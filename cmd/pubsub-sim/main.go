// Command pubsub-sim runs one simulation of the reliable content-based
// publish-subscribe system and prints its measurements.
//
// Examples:
//
//	pubsub-sim                                   # paper defaults, no recovery
//	pubsub-sim -algo combined-pull               # with epidemic recovery
//	pubsub-sim -algo push -eps 0.05 -n 200
//	pubsub-sim -algo combined-pull -rho 30ms -eps 0   # reconfiguration scenario
//	pubsub-sim -algo push -series                # dump the delivery time series
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	epidemic "repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pubsub-sim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("pubsub-sim", flag.ContinueOnError)
	var (
		algo     = fs.String("algo", "no-recovery", "recovery algorithm: no-recovery, push, subscriber-pull, publisher-pull, combined-pull, random-pull, hybrid")
		n        = fs.Int("n", 100, "number of dispatchers (N)")
		pimax    = fs.Int("pimax", 2, "max subscriptions per dispatcher (πmax)")
		patterns = fs.Int("patterns", 70, "pattern universe size (Π)")
		rate     = fs.Float64("rate", 50, "publish rate per dispatcher (events/s)")
		eps      = fs.Float64("eps", 0.1, "per-hop link error rate (ε)")
		rho      = fs.Duration("rho", 0, "interval between reconfigurations (ρ); 0 = none")
		beta     = fs.Int("beta", 1500, "event buffer size (β)")
		interval = fs.Duration("interval", 30*time.Millisecond, "gossip interval (T)")
		pforward = fs.Float64("pforward", 0.9, "gossip forwarding probability")
		psource  = fs.Float64("psource", 0.5, "combined-pull publisher-side probability")
		duration = fs.Duration("duration", 25*time.Second, "simulated time")
		seed     = fs.Int64("seed", 1, "random seed")
		series   = fs.Bool("series", false, "also print the delivery-rate time series (TSV)")
		traceN   = fs.Int("trace", 0, "also print the last N protocol trace records")
		metrics  = fs.String("metrics", "exact", "measurement engine: exact (per-event) or streaming (O(1) memory)")
		overlay  = fs.String("overlay", "tree", "overlay kind: tree, scale-free, small-world")
		repairMd = fs.String("repair", "oracle", "fault repair mode: oracle or self-stabilizing (needs -plan churn)")
		planRate = fs.Float64("plan", 0, "node churn plan: crashes/s systemwide over the run (0 = none)")
		zipf     = fs.Float64("zipf", 0, "Zipf exponent for content and subscription popularity (0 = uniform)")
		hot      = fs.Int("hot", 0, "concentrate publish load on this many hot publishers (0 = uniform)")
		hotshare = fs.Float64("hotshare", 0, "share of aggregate load on the hot publishers (default 0.5 with -hot)")
		churn    = fs.Float64("churn", 0, "subscription churn rate (swaps/s systemwide, 0 = stable)")
		adaptive = fs.Bool("adapt", false, "enable the closed-loop adaptive controller (implied by -algo hybrid)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	a, err := epidemic.ParseAlgorithm(*algo)
	if err != nil {
		return err
	}
	kind, err := epidemic.ParseOverlayKind(*overlay)
	if err != nil {
		return err
	}
	rmode, err := epidemic.ParseRepairMode(*repairMd)
	if err != nil {
		return err
	}
	p := epidemic.DefaultParams()
	p.Seed = *seed
	p.N = *n
	p.PatternsPerNode = *pimax
	p.NumPatterns = *patterns
	p.PublishRate = *rate
	p.Duration = *duration
	p.Algorithm = a
	p.Network.LossRate = *eps
	p.Network.OOBLossRate = *eps
	p.ReconfigInterval = *rho
	p.Overlay = kind
	p.Repair = rmode
	if *planRate > 0 {
		p.FaultPlan = epidemic.ChurnPlan(*seed, *n, *planRate, p.Duration, 300*time.Millisecond)
	}
	p.Gossip.BufferSize = *beta
	p.Gossip.GossipInterval = *interval
	p.Gossip.PForward = *pforward
	p.Gossip.PSource = *psource
	if *adaptive || a == epidemic.Hybrid {
		p.Adapt = &epidemic.AdaptConfig{}
	}
	if *traceN > 0 {
		p.Trace = epidemic.NewTrace(*traceN)
	}
	switch *metrics {
	case "exact":
	case "streaming":
		p.MetricsMode = epidemic.MetricsStreaming
	default:
		return fmt.Errorf("unknown -metrics mode %q (exact or streaming)", *metrics)
	}
	p.Workload = epidemic.Workload{
		ZipfContent:       *zipf,
		ZipfSubscriptions: *zipf,
		HotPublishers:     *hot,
		HotShare:          *hotshare,
		SubChurnRate:      *churn,
	}

	start := time.Now()
	res, err := epidemic.Run(p)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "algorithm            %v\n", a)
	if kind != epidemic.OverlayTree {
		fmt.Fprintf(w, "overlay              %v (first-arrival dedup forwarding)\n", kind)
	}
	fmt.Fprintf(w, "dispatchers          N=%d (mean path %.2f hops)\n", p.N, res.MeanPathLength)
	fmt.Fprintf(w, "workload             %.0f publish/s per dispatcher, %v simulated\n", p.PublishRate, p.Duration)
	if *rho > 0 {
		fmt.Fprintf(w, "reconfigurations     %d (every %v, repaired after %v)\n",
			res.Reconfigurations, *rho, p.RepairDelay)
	} else {
		fmt.Fprintf(w, "link error rate      ε=%.3f\n", *eps)
	}
	fmt.Fprintf(w, "events published     %d\n", res.EventsPublished)
	fmt.Fprintf(w, "delivery rate        %.2f%% (window %v–%v)\n",
		res.DeliveryRate*100, res.Params.MeasureFrom, res.Params.MeasureTo)
	if a != epidemic.NoRecovery {
		fmt.Fprintf(w, "recovered share      %.2f%% of deliveries\n", res.RecoveredShare*100)
		fmt.Fprintf(w, "losses detected      %d\n", res.EngineStats.LossesDetected)
		fmt.Fprintf(w, "events recovered     %d (+%d duplicate retransmissions)\n",
			res.EngineStats.Recovered, res.EngineStats.DuplicateRecoveries)
		fmt.Fprintf(w, "gossip msgs/disp     %.0f\n", res.GossipPerDispatcher)
		fmt.Fprintf(w, "gossip/event ratio   %.3f\n", res.GossipEventRatio)
	}
	if p.Adapt != nil {
		ad := res.Adapt
		fmt.Fprintf(w, "adaptation           %d adjustments, interval %v–%v, mean loss est %.4f\n",
			ad.Adjustments, ad.MinInterval, ad.MaxInterval, ad.MeanLoss)
		fmt.Fprintf(w, "mode/walk switches   %d / %d\n", ad.ModeSwitches, ad.WalkSwitches)
	}
	if *planRate > 0 {
		fmt.Fprintf(w, "node churn           %d crashes, %d restarts, %v cumulative downtime\n",
			res.Crashes, res.Restarts, res.NodeDowntime)
		fmt.Fprintf(w, "repair mode          %v\n", rmode)
		if rmode == epidemic.RepairSelfStabilizing {
			fmt.Fprintf(w, "repair protocol      %d rounds, +%d/-%d links, %d reattaches\n",
				res.Repair.Rounds, res.Repair.LinksAdded, res.Repair.LinksDropped, res.Repair.Reattaches)
		} else if res.RepairAbandoned > 0 {
			fmt.Fprintf(w, "repairs abandoned    %d\n", res.RepairAbandoned)
		}
	}
	fmt.Fprintf(w, "receivers per event  %.2f\n", res.ReceiversPerEvent)
	if *churn > 0 {
		fmt.Fprintf(w, "subscription churns  %d\n", res.SubChurns)
	}
	fmt.Fprintf(w, "kernel events        %d (%.1fs wall)\n", res.KernelEvents, time.Since(start).Seconds())

	if *series {
		fmt.Fprintf(w, "\n# publish-time-bucket\tdelivery-rate\n")
		for _, pt := range res.TimeSeries {
			fmt.Fprintf(w, "%.2f\t%.4f\n", pt.Time.Seconds(), pt.Rate)
		}
	}
	if p.Trace != nil {
		fmt.Fprintf(w, "\n# last %d protocol trace records\n", *traceN)
		if err := p.Trace.Dump(w); err != nil {
			return err
		}
	}
	return nil
}
