package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestKernelRunsInTimestampOrder(t *testing.T) {
	k := New(1)
	var got []int
	k.At(30*time.Millisecond, func() { got = append(got, 3) })
	k.At(10*time.Millisecond, func() { got = append(got, 1) })
	k.At(20*time.Millisecond, func() { got = append(got, 2) })
	if n := k.Run(time.Second); n != 3 {
		t.Fatalf("Run executed %d events, want 3", n)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
}

func TestKernelTieBreakIsInsertionOrder(t *testing.T) {
	k := New(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		k.At(time.Millisecond, func() { got = append(got, i) })
	}
	k.Run(time.Second)
	for i := 0; i < 100; i++ {
		if got[i] != i {
			t.Fatalf("tie broken out of insertion order at %d: got %d", i, got[i])
		}
	}
}

func TestKernelClockAdvancesDuringHandlers(t *testing.T) {
	k := New(1)
	var at Time
	k.At(42*time.Millisecond, func() { at = k.Now() })
	k.Run(time.Second)
	if at != 42*time.Millisecond {
		t.Fatalf("Now() inside handler = %v, want 42ms", at)
	}
	if k.Now() != time.Second {
		t.Fatalf("clock after Run = %v, want horizon 1s", k.Now())
	}
}

func TestKernelHorizonLeavesFutureEvents(t *testing.T) {
	k := New(1)
	fired := false
	k.At(2*time.Second, func() { fired = true })
	k.Run(time.Second)
	if fired {
		t.Fatal("event past horizon fired")
	}
	k.Run(3 * time.Second)
	if !fired {
		t.Fatal("event not fired after extending horizon")
	}
}

func TestKernelSchedulingFromHandler(t *testing.T) {
	k := New(1)
	var order []string
	k.At(time.Millisecond, func() {
		order = append(order, "a")
		k.After(time.Millisecond, func() { order = append(order, "b") })
	})
	k.Run(time.Second)
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v, want [a b]", order)
	}
}

func TestKernelSchedulePastPanics(t *testing.T) {
	k := New(1)
	k.At(time.Second, func() {})
	k.Run(2 * time.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	k.At(time.Millisecond, func() {})
}

func TestCancelerPreventsExecution(t *testing.T) {
	k := New(1)
	fired := false
	c := k.At(time.Millisecond, func() { fired = true })
	c.Cancel()
	k.Run(time.Second)
	if fired {
		t.Fatal("cancelled event fired")
	}
	c.Cancel() // double-cancel is a no-op
}

func TestKernelStop(t *testing.T) {
	k := New(1)
	var count int
	for i := 1; i <= 10; i++ {
		k.At(Time(i)*time.Millisecond, func() {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	k.Run(time.Second)
	if count != 3 {
		t.Fatalf("executed %d events after Stop, want 3", count)
	}
}

func TestNewStreamDeterministicAndDecorrelated(t *testing.T) {
	k1 := New(7)
	k2 := New(7)
	a1 := k1.NewStream(1)
	a2 := k2.NewStream(1)
	b := k1.NewStream(2)
	sameAsA1 := true
	for i := 0; i < 32; i++ {
		x := a1.Int63()
		if x != a2.Int63() {
			t.Fatal("same (seed, tag) produced different streams")
		}
		if x != b.Int63() {
			sameAsA1 = false
		}
	}
	if sameAsA1 {
		t.Fatal("different tags produced identical streams")
	}
}

func TestTickerPeriodicFiring(t *testing.T) {
	k := New(1)
	var times []Time
	NewTicker(k, 10*time.Millisecond, 5*time.Millisecond, func() {
		times = append(times, k.Now())
	})
	k.Run(36 * time.Millisecond)
	want := []Time{5 * time.Millisecond, 15 * time.Millisecond, 25 * time.Millisecond, 35 * time.Millisecond}
	if len(times) != len(want) {
		t.Fatalf("fired %d times (%v), want %d", len(times), times, len(want))
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("firing %d at %v, want %v", i, times[i], want[i])
		}
	}
}

func TestTickerStop(t *testing.T) {
	k := New(1)
	count := 0
	var tk *Ticker
	tk = NewTicker(k, 10*time.Millisecond, 0, func() {
		count++
		if count == 2 {
			tk.Stop()
		}
	})
	k.Run(time.Second)
	if count != 2 {
		t.Fatalf("ticker fired %d times after Stop, want 2", count)
	}
}

func TestTickerSetPeriod(t *testing.T) {
	k := New(1)
	var times []Time
	var tk *Ticker
	tk = NewTicker(k, 10*time.Millisecond, 0, func() {
		times = append(times, k.Now())
		tk.SetPeriod(20 * time.Millisecond)
	})
	k.Run(55 * time.Millisecond)
	want := []Time{0, 20 * time.Millisecond, 40 * time.Millisecond}
	if len(times) != len(want) {
		t.Fatalf("fired at %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("fired at %v, want %v", times, want)
		}
	}
}

func TestJitteredTickerPhaseWithinPeriod(t *testing.T) {
	k := New(99)
	var first Time = -1
	NewJitteredTicker(k, 30*time.Millisecond, k.NewStream(3), func() {
		if first < 0 {
			first = k.Now()
		}
	})
	k.Run(time.Second)
	if first < 0 || first >= 30*time.Millisecond {
		t.Fatalf("first firing at %v, want within [0, 30ms)", first)
	}
}

// TestKernelExecutionOrderProperty: any batch of events scheduled with
// arbitrary timestamps executes in non-decreasing time order, and
// events with equal timestamps execute in insertion order.
func TestKernelExecutionOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		k := New(1)
		type exec struct {
			at  Time
			seq int
		}
		var got []exec
		for i, d := range delays {
			at := Time(d%977) * time.Millisecond
			i := i
			k.At(at, func() { got = append(got, exec{at: k.Now(), seq: i}) })
		}
		k.RunAll()
		if len(got) != len(delays) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKernelProcessedCount(t *testing.T) {
	k := New(1)
	for i := 0; i < 5; i++ {
		k.After(time.Millisecond, func() {})
	}
	c := k.After(2*time.Millisecond, func() {})
	c.Cancel()
	k.RunAll()
	if got := k.Processed(); got != 5 {
		t.Fatalf("Processed = %d, want 5 (cancelled events do not count)", got)
	}
}

func BenchmarkKernelScheduleAndRun(b *testing.B) {
	k := New(1)
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.After(time.Millisecond, fn)
		if k.Pending() > 1024 {
			k.RunAll()
		}
	}
	k.RunAll()
}

func TestKernelEntryRecyclingReusesEntries(t *testing.T) {
	k := New(1)
	var ran int
	for i := 0; i < 1000; i++ {
		k.After(time.Millisecond, func() { ran++ })
		k.RunAll()
	}
	if ran != 1000 {
		t.Fatalf("ran = %d, want 1000", ran)
	}
	// After the first iterations the free list feeds every At call:
	// scheduling must not grow the heap beyond the standing population.
	if got := testing.AllocsPerRun(100, func() {
		k.After(time.Millisecond, func() {})
		k.RunAll()
	}); got > 0 {
		t.Fatalf("schedule/dispatch allocates %v objects per event, want 0", got)
	}
}

func TestKernelStaleCancelerIsNoOpAfterRecycle(t *testing.T) {
	k := New(1)
	var first, second bool
	c := k.After(time.Millisecond, func() { first = true })
	k.RunAll()
	// The entry behind c has been recycled; the next After may reuse it.
	for i := 0; i < 10; i++ {
		k.After(time.Millisecond, func() { second = true })
	}
	c.Cancel() // must not cancel the recycled entry's new event
	k.RunAll()
	if !first || !second {
		t.Fatalf("first = %v, second = %v, want both true", first, second)
	}
}

func TestKernelCancelDuringOwnHandlerIsNoOp(t *testing.T) {
	k := New(1)
	var c Canceler
	ran := false
	c = k.After(time.Millisecond, func() {
		ran = true
		c.Cancel() // self-cancel mid-execution must not corrupt the pool
	})
	k.RunAll()
	if !ran {
		t.Fatal("handler did not run")
	}
	fired := false
	k.After(time.Millisecond, func() { fired = true })
	k.RunAll()
	if !fired {
		t.Fatal("self-cancel leaked into a later event")
	}
}

func TestKernelMassCancellationDrainsLazily(t *testing.T) {
	k := New(1)
	cancels := make([]Canceler, 0, 10000)
	for i := 0; i < 10000; i++ {
		cancels = append(cancels, k.After(time.Hour, func() {}))
	}
	keep := k.After(time.Minute, func() {})
	_ = keep
	for _, c := range cancels {
		c.Cancel()
	}
	// The sweep must have reclaimed the cancelled bulk without virtual
	// time ever reaching the cancelled timestamps.
	if p := k.Pending(); p > 128 {
		t.Fatalf("Pending = %d after mass cancel, want sweep to have drained it", p)
	}
	if n := k.Run(2 * time.Minute); n != 1 {
		t.Fatalf("executed %d events, want just the surviving one", n)
	}
}

func TestKernelDoubleCancelCountsOnce(t *testing.T) {
	k := New(1)
	var ran int
	for i := 0; i < 200; i++ {
		k.After(time.Hour, func() { ran++ })
	}
	c := k.After(time.Hour, func() { ran++ })
	for i := 0; i < 1000; i++ {
		c.Cancel() // repeated cancels must not inflate the dead count
	}
	k.RunAll()
	if ran != 200 {
		t.Fatalf("ran = %d, want 200", ran)
	}
}
