package core

import (
	"testing"
	"time"

	"repro/internal/ident"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/wire"
)

// Allocation-regression pins for the gossip hot path. These tests
// encode PR 2's zero-allocation guarantees with testing.AllocsPerRun so
// a future change that re-introduces per-round garbage fails loudly
// rather than silently regressing throughput.

// TestQuiescentRoundAllocsZero pins the steady-state cost of a gossip
// round with nothing to recover: every engine pays this fixed cost
// every interval T, so it must not allocate at all.
func TestQuiescentRoundAllocsZero(t *testing.T) {
	topo, err := topology.New(9, 3, sim.New(7).NewStream(1))
	if err != nil {
		t.Fatal(err)
	}
	subs := make([][]ident.PatternID, topo.N())
	for i := range subs {
		subs[i] = []ident.PatternID{pat32(i % 4), pat32((i + 1) % 4)}
	}
	for _, algo := range []Algorithm{Push, SubscriberPull, PublisherPull, CombinedPull, RandomPull} {
		t.Run(algo.String(), func(t *testing.T) {
			r := newRig(t, topo, subs, DefaultConfig(algo))
			// Warm once: first reads may materialize cached snapshots.
			for _, e := range r.engines {
				e.RunRound()
			}
			allocs := testing.AllocsPerRun(100, func() {
				for _, e := range r.engines {
					e.RunRound()
				}
			})
			if allocs != 0 {
				t.Fatalf("quiescent %v round: %v allocs/run, want 0", algo, allocs)
			}
		})
	}
}

// TestLostBufferDigestReadAllocsZero pins the read path of a populated
// but unchanging Lost buffer: every view the pull gossipers consult is
// served from incremental indexes and cached snapshots.
func TestLostBufferDigestReadAllocsZero(t *testing.T) {
	lb := NewLostBuffer(1024, 10*time.Second)
	now := sim32(1)
	for s := 0; s < 4; s++ {
		for p := 0; p < 4; p++ {
			for q := 1; q <= 8; q++ {
				lb.Add(wire.LostEntry{Source: ident32(s), Pattern: pat32(p), Seq: uint32(q)}, now)
			}
		}
	}
	// Warm the snapshots once.
	lb.All(now)
	lb.Patterns(now)
	lb.Sources(now)
	lb.ForPattern(pat32(0), now)
	lb.ForSource(ident32(0), now)
	allocs := testing.AllocsPerRun(100, func() {
		if len(lb.All(now)) == 0 ||
			len(lb.Patterns(now)) == 0 ||
			len(lb.Sources(now)) == 0 ||
			len(lb.ForPattern(pat32(1), now)) == 0 ||
			len(lb.ForSource(ident32(1), now)) == 0 {
			t.Fatal("digest unexpectedly empty")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady digest reads: %v allocs/run, want 0", allocs)
	}
}

// TestEventIDSetSortedCachedAllocsZero pins the push digest: Sorted on
// an unchanged set returns the cached snapshot without allocating.
func TestEventIDSetSortedCachedAllocsZero(t *testing.T) {
	set := ident.NewEventIDSet(64)
	for i := 0; i < 64; i++ {
		set.Add(ident.EventID{Source: ident32(i % 8), Seq: uint32(i)})
	}
	set.Sorted() // warm the snapshot
	allocs := testing.AllocsPerRun(100, func() {
		if len(set.Sorted()) != 64 {
			t.Fatal("wrong digest length")
		}
	})
	if allocs != 0 {
		t.Fatalf("cached Sorted: %v allocs/run, want 0", allocs)
	}
}
