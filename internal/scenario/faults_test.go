package scenario

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/network"
)

// churnParams is the shared configuration of the churn tests: small
// enough to run in milliseconds, busy enough that crashes, healing,
// rejoin, and recovery all actually happen.
func churnParams() Params {
	p := DefaultParams()
	p.Seed = 7
	p.N = 30
	p.Duration = 4 * time.Second
	p.MeasureFrom = 500 * time.Millisecond
	p.MeasureTo = 3500 * time.Millisecond
	p.PublishRate = 20
	p.Algorithm = core.CombinedPull
	p.Gossip = core.DefaultConfig(core.CombinedPull)
	p.FaultPlan = faults.ChurnPlan(p.Seed, p.N, 2, p.Duration, 300*time.Millisecond)
	return p
}

// TestChurnFaultPlanDeterministicReplay pins the acceptance criterion:
// same seed + same fault plan → bit-identical results, run after run.
func TestChurnFaultPlanDeterministicReplay(t *testing.T) {
	p := churnParams()
	var r1, r2 Runner
	a, err := r1.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r2.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Crashes == 0 || a.Restarts == 0 {
		t.Fatalf("plan injected no churn: crashes=%d restarts=%d", a.Crashes, a.Restarts)
	}
	if a.DeliveryRate != b.DeliveryRate ||
		a.Deliveries != b.Deliveries ||
		a.ExpectedDeliveries != b.ExpectedDeliveries ||
		a.Recoveries != b.Recoveries ||
		a.Crashes != b.Crashes ||
		a.Restarts != b.Restarts ||
		a.NodeDowntime != b.NodeDowntime ||
		a.KernelEvents != b.KernelEvents {
		t.Fatalf("replay diverged:\n  a=%+v\n  b=%+v", a, b)
	}
	if len(a.TimeSeries) != len(b.TimeSeries) {
		t.Fatalf("time series length diverged: %d vs %d", len(a.TimeSeries), len(b.TimeSeries))
	}
	for i := range a.TimeSeries {
		if a.TimeSeries[i] != b.TimeSeries[i] {
			t.Fatalf("time series bucket %d diverged: %+v vs %+v", i, a.TimeSeries[i], b.TimeSeries[i])
		}
	}
}

// TestChurnRecoversDeliveries checks the qualitative story: under node
// churn, the epidemic recovery algorithm still delivers the vast
// majority of expected events, and far more than the bare tree.
func TestChurnRecoversDeliveries(t *testing.T) {
	p := churnParams()
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveryRate < 0.75 {
		t.Errorf("combined pull under churn delivered only %.3f", res.DeliveryRate)
	}
	if res.DeliveryRate > 1+1e-9 {
		t.Errorf("delivery rate %.6f exceeds 1: downtime accounting is inconsistent", res.DeliveryRate)
	}
	if res.NodeDowntime <= 0 {
		t.Errorf("no downtime recorded despite %d crashes", res.Crashes)
	}

	p.Algorithm = core.NoRecovery
	p.Gossip = core.DefaultConfig(core.NoRecovery)
	bare, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if bare.DeliveryRate+0.1 >= res.DeliveryRate {
		t.Errorf("recovery gained too little: bare=%.3f recovered=%.3f", bare.DeliveryRate, res.DeliveryRate)
	}
}

// TestFaultCrashExcludesDowntimeDeliveries crashes one dispatcher for a
// fixed window and checks the Λ accounting: expected deliveries shrink
// relative to the fault-free run (the dead subscriber is not expected
// to receive), downtime is recorded, and the rate stays a true ratio.
func TestFaultCrashExcludesDowntimeDeliveries(t *testing.T) {
	p := DefaultParams()
	p.Seed = 11
	p.N = 20
	p.Duration = 3 * time.Second
	p.MeasureFrom = 200 * time.Millisecond
	p.MeasureTo = 2800 * time.Millisecond
	p.PublishRate = 30
	p.Algorithm = core.Push
	p.Gossip = core.DefaultConfig(core.Push)

	base, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}

	p.FaultPlan = &faults.Plan{Actions: []faults.Action{
		{At: time.Second, Kind: faults.NodeCrash, Node: 3, Downtime: time.Second},
	}}
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != 1 || res.Restarts != 1 {
		t.Fatalf("plan execution: crashes=%d restarts=%d, want 1/1", res.Crashes, res.Restarts)
	}
	if res.NodeDowntime < time.Second {
		t.Errorf("downtime %v < scheduled 1s", res.NodeDowntime)
	}
	if res.ExpectedDeliveries >= base.ExpectedDeliveries {
		t.Errorf("expected deliveries did not shrink: %d (fault) vs %d (base)",
			res.ExpectedDeliveries, base.ExpectedDeliveries)
	}
	if res.DeliveryRate > 1+1e-9 {
		t.Errorf("delivery rate %.6f exceeds 1", res.DeliveryRate)
	}
}

// TestFaultPartitionCutsAndHeals partitions two distant dispatchers and
// checks the link comes back.
func TestFaultPartitionCutsAndHeals(t *testing.T) {
	p := DefaultParams()
	p.Seed = 3
	p.N = 16
	p.Duration = 2 * time.Second
	p.MeasureFrom = 100 * time.Millisecond
	p.MeasureTo = 1900 * time.Millisecond
	p.PublishRate = 10
	p.Algorithm = core.SubscriberPull
	p.Gossip = core.DefaultConfig(core.SubscriberPull)
	p.FaultPlan = &faults.Plan{Actions: []faults.Action{
		{At: 500 * time.Millisecond, Kind: faults.Partition, A: 0, B: 15, Downtime: 300 * time.Millisecond},
	}}
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitions != 1 {
		t.Fatalf("partitions = %d, want 1", res.Partitions)
	}
	if res.DeliveryRate < 0.6 {
		t.Errorf("delivery rate %.3f too low for a 300ms partition with recovery", res.DeliveryRate)
	}
}

// TestFaultLossModelSwitch swaps Bernoulli for heavy Gilbert–Elliott
// bursts mid-run and checks the switch is applied and hurts delivery.
func TestFaultLossModelSwitch(t *testing.T) {
	p := DefaultParams()
	p.Seed = 5
	p.N = 20
	p.Duration = 3 * time.Second
	p.MeasureFrom = 100 * time.Millisecond
	p.MeasureTo = 2900 * time.Millisecond
	p.PublishRate = 20
	p.Network.LossRate = 0 // lossless start

	clean, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	p.FaultPlan = &faults.Plan{Actions: []faults.Action{
		{At: time.Second, Kind: faults.SetLossModel, NewModel: func(stream func(int64) *rand.Rand) network.LossModel {
			return network.NewGilbertElliott(network.GilbertElliottConfig{
				PGoodToBad: 0.2, PBadToGood: 0.2, DropGood: 0, DropBad: 1,
			}, stream)
		}},
	}}
	lossy, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if lossy.DeliveryRate >= clean.DeliveryRate {
		t.Errorf("burst losses did not hurt: clean=%.3f lossy=%.3f", clean.DeliveryRate, lossy.DeliveryRate)
	}
}

// TestBurstLossScenarioDeterministic runs a whole scenario under the
// Gilbert–Elliott model and pins replay determinism.
func TestBurstLossScenarioDeterministic(t *testing.T) {
	p := DefaultParams()
	p.Seed = 9
	p.N = 25
	p.Duration = 2 * time.Second
	p.MeasureFrom = 200 * time.Millisecond
	p.MeasureTo = 1800 * time.Millisecond
	p.PublishRate = 15
	p.Algorithm = core.CombinedPull
	p.Gossip = core.DefaultConfig(core.CombinedPull)
	p.Network.LossRate = 0
	p.NewLossModel = func(stream func(int64) *rand.Rand) network.LossModel {
		return network.NewGilbertElliott(network.GilbertElliottConfig{
			PGoodToBad: 0.05, PBadToGood: 0.4, DropGood: 0.01, DropBad: 0.9,
		}, stream)
	}
	a, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.DeliveryRate != b.DeliveryRate || a.Deliveries != b.Deliveries || a.KernelEvents != b.KernelEvents {
		t.Fatalf("burst-loss replay diverged: %+v vs %+v", a, b)
	}
	if a.DeliveryRate <= 0 || a.DeliveryRate > 1 {
		t.Fatalf("implausible delivery rate %.3f", a.DeliveryRate)
	}
	if a.Recoveries == 0 {
		t.Error("no recoveries under heavy-drop bursts")
	}
}

// TestChurnFixedSeedMetrics pins exact metrics for one fixed seed and
// plan — the CI fault-matrix smoke. Any change to fault execution
// order, RNG stream use, or downtime accounting shows up here as a
// bit-level diff. Values recorded from the implementation at the time
// this test was written; see the golden test for the fault-free pins.
func TestChurnFixedSeedMetrics(t *testing.T) {
	p := churnParams()
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	want := struct {
		rate              float64
		del, exp, rec     uint64
		crashes, restarts uint64
		downtime          time.Duration
		kernel            uint64
	}{
		rate:     0.8277351247600768,
		del:      4493,
		exp:      5531,
		rec:      965,
		crashes:  5,
		restarts: 4, // the last crash is still down at run end
		downtime: 1718206963 * time.Nanosecond,
		kernel:   24629,
	}
	if res.DeliveryRate != want.rate ||
		res.Deliveries != want.del ||
		res.ExpectedDeliveries != want.exp ||
		res.Recoveries != want.rec ||
		res.Crashes != want.crashes ||
		res.Restarts != want.restarts ||
		res.NodeDowntime != want.downtime ||
		res.KernelEvents != want.kernel {
		t.Errorf("churn metrics drifted from pinned values:\n got rate=%v del=%d exp=%d rec=%d crash=%d restart=%d down=%v kernel=%d\nwant rate=%v del=%d exp=%d rec=%d crash=%d restart=%d down=%v kernel=%d",
			res.DeliveryRate, res.Deliveries, res.ExpectedDeliveries, res.Recoveries,
			res.Crashes, res.Restarts, res.NodeDowntime, res.KernelEvents,
			want.rate, want.del, want.exp, want.rec,
			want.crashes, want.restarts, want.downtime, want.kernel)
	}
}

// TestReconfigSkipCounted drives the re-draw path directly: with a
// 2-node topology whose only link is permanently flapped down just
// before each reconfiguration epoch, every epoch must be counted as
// skipped instead of silently dropped.
func TestReconfigSkipCounted(t *testing.T) {
	p := DefaultParams()
	p.Seed = 2
	p.N = 2
	p.PatternsPerNode = 1
	p.Duration = 1 * time.Second
	p.MeasureFrom = 1 * time.Millisecond
	p.MeasureTo = 999 * time.Millisecond
	p.PublishRate = 5
	p.ReconfigInterval = 300 * time.Millisecond
	p.RepairDelay = 10 * time.Second // broken links stay broken
	// Cut the only link before the first reconfiguration epoch and
	// never restore it: every epoch sees an empty topology.
	p.FaultPlan = &faults.Plan{Actions: []faults.Action{
		{At: 100 * time.Millisecond, Kind: faults.LinkFlap, A: 0, B: 1},
	}}
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.LinkFlaps != 1 {
		t.Fatalf("link flaps = %d, want 1", res.LinkFlaps)
	}
	if res.Reconfigurations != 0 {
		t.Errorf("reconfigurations = %d, want 0 (no link to break)", res.Reconfigurations)
	}
	if res.ReconfigSkips == 0 {
		t.Error("no reconfiguration skips counted")
	}
}
