// Package differential cross-checks the discrete-event simulator
// against the live UDP implementation: the same overlay, the same
// subscriptions, and the same per-node publish order are driven
// through both, and every subscriber must end up with the same set of
// delivered event IDs on both sides.
//
// Event identifiers are {source, sequence} with the sequence assigned
// by the publishing node, so replaying the publish plan in the same
// per-node order yields bit-identical IDs in both worlds — the
// delivered sets are directly comparable with no translation layer.
//
// The two sides do not share a loss process (the simulator draws from
// its kernel streams, the live nodes from their own PRNGs), so the
// comparison cannot be trajectory-exact. It is instead a fixed-point
// comparison: both sides run their recovery machinery to convergence,
// where every subscriber holds every matching event regardless of
// which transmissions were dropped. To force convergence past the
// in-flight tail — gap detection is driven by per-(source, pattern)
// sequence tags, so the last events of a chain have no successor to
// betray their loss — the harness publishes flush waves: extra events
// on every (publisher, pattern) chain used by the plan. Flush events
// exist only to extend the chains; they are excluded from the
// comparison, which covers exactly the core plan events.
package differential

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/live"
	"repro/internal/matching"
	"repro/internal/network"
	"repro/internal/pubsub"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/wire"
)

// Case selects one differential comparison.
type Case struct {
	Seed      int64
	N         int
	Algorithm core.Algorithm
	// Publishes is the number of core (compared) events. Zero means 40.
	Publishes int
	// Hosted runs the live side on a shared Dispatcher (batched sockets,
	// coalesced envelopes) instead of one socket per node. The protocol
	// traffic must be indistinguishable, so the same fixed point must be
	// reached.
	Hosted bool
}

const (
	maxDegree      = 4
	patternCount   = 3
	gossipInterval = 8 * time.Millisecond
	dropProb       = 0.12
	// pacing between publishes: enough for the live tree to not melt,
	// short enough to keep wall-clock time low.
	publishGap = 2 * time.Millisecond
	// flushWaves bounds the convergence pushes; the live side stops
	// early once its delivered sets match the simulator's.
	flushWaves = 12
	waveBudget = 700 * time.Millisecond
)

// plan is the shared script both sides replay: who subscribes to
// what, and who publishes what in which order.
type plan struct {
	subs [][]ident.PatternID
	pubs []pubAction // core publishes, in global order
}

type pubAction struct {
	node int
	pat  ident.PatternID
}

// newPlan derives a deterministic script from the case seed. Every
// pattern gets at least two subscribers (subscriber-based pull needs a
// co-subscriber to gossip with), and publishers are never subscribed
// to the patterns they publish, so self-deliveries — which the two
// implementations account differently — never occur.
func newPlan(c Case) *plan {
	rng := rand.New(rand.NewSource(c.Seed * 7919))
	pl := &plan{subs: make([][]ident.PatternID, c.N)}
	subscribed := make([]map[ident.PatternID]bool, c.N)
	for i := range subscribed {
		subscribed[i] = make(map[ident.PatternID]bool)
	}
	for p := 1; p <= patternCount; p++ {
		pat := ident.PatternID(p)
		want := 2 + rng.Intn(2)
		for have := 0; have < want; {
			n := rng.Intn(c.N)
			if subscribed[n][pat] {
				continue
			}
			subscribed[n][pat] = true
			pl.subs[n] = append(pl.subs[n], pat)
			have++
		}
	}
	count := c.Publishes
	if count == 0 {
		count = 40
	}
	for len(pl.pubs) < count {
		n := rng.Intn(c.N)
		pat := ident.PatternID(1 + rng.Intn(patternCount))
		if subscribed[n][pat] {
			continue
		}
		pl.pubs = append(pl.pubs, pubAction{node: n, pat: pat})
	}
	return pl
}

// chains returns the distinct (publisher, pattern) pairs the plan
// uses, in first-use order — the chains flush waves must extend.
func (pl *plan) chains() []pubAction {
	seen := make(map[pubAction]bool)
	var out []pubAction
	for _, a := range pl.pubs {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// deliveredSets maps node index → set of core event IDs delivered
// there. Non-subscribers appear with empty sets, so overdelivery on
// either side surfaces as a set mismatch.
type deliveredSets []map[ident.EventID]bool

func newDeliveredSets(n int) deliveredSets {
	s := make(deliveredSets, n)
	for i := range s {
		s[i] = make(map[ident.EventID]bool)
	}
	return s
}

func (s deliveredSets) equal(o deliveredSets) bool {
	for i := range s {
		if len(s[i]) != len(o[i]) {
			return false
		}
		for id := range s[i] {
			if !o[i][id] {
				return false
			}
		}
	}
	return true
}

// diff describes the first divergence for the failure message.
func (s deliveredSets) diff(o deliveredSets, sName, oName string) string {
	for i := range s {
		var only []string
		for id := range s[i] {
			if !o[i][id] {
				only = append(only, id.String())
			}
		}
		for id := range o[i] {
			if !s[i][id] {
				only = append(only, "-"+id.String())
			}
		}
		if len(only) > 0 {
			sort.Strings(only)
			return fmt.Sprintf("node %d: %s=%d events, %s=%d events; divergent (− = only in %s): %v",
				i, sName, len(s[i]), oName, len(o[i]), oName, only)
		}
	}
	return "sets identical"
}

// Run drives one case through both implementations and returns an
// error describing the first divergence, if any.
func Run(c Case) error {
	pl := newPlan(c)
	simSets, err := runSim(c, pl)
	if err != nil {
		return fmt.Errorf("differential: sim side: %w", err)
	}
	liveSets, err := runLive(c, pl, simSets)
	if err != nil {
		return fmt.Errorf("differential: live side: %w", err)
	}
	if !simSets.equal(liveSets) {
		return fmt.Errorf("differential: seed=%d algo=%s: delivered sets diverged: %s",
			c.Seed, c.Algorithm, simSets.diff(liveSets, "sim", "live"))
	}
	return nil
}

// runSim replays the plan in the simulator: core publishes paced
// publishGap apart, then all flushWaves waves on a fixed virtual
// schedule, then a settle period long enough for recovery to reach
// its fixed point.
func runSim(c Case, pl *plan) (deliveredSets, error) {
	k := sim.New(c.Seed)
	topo, err := topology.New(c.N, maxDegree, rand.New(rand.NewSource(c.Seed)))
	if err != nil {
		return nil, err
	}
	ncfg := network.DefaultConfig()
	ncfg.LossRate = dropProb
	ncfg.OOBLossRate = 0 // the live side never drops OOB traffic
	nw := network.New(k, topo, ncfg, nil)

	core_, sets := make(map[ident.EventID]bool), newDeliveredSets(c.N)
	pcfg := pubsub.Config{
		RecordRoutes: c.Algorithm.NeedsRoutes(),
		OnDeliver: func(node ident.NodeID, ev *wire.Event, recovered bool) {
			if core_[ev.ID] {
				sets[node][ev.ID] = true
			}
		},
	}
	nodes := make([]*pubsub.Node, c.N)
	for i := range nodes {
		id := ident.NodeID(i)
		nodes[i] = pubsub.NewNode(id, k, nw, topo.Neighbors(id), pcfg)
	}
	pubsub.InstallStableSubscriptions(topo, nodes, pl.subs)

	gcfg := core.DefaultConfig(c.Algorithm)
	gcfg.GossipInterval = gossipInterval
	engines := make([]*core.Engine, 0, c.N)
	for _, n := range nodes {
		e, err := core.NewEngine(n, gcfg)
		if err != nil {
			return nil, err
		}
		e.Start()
		engines = append(engines, e)
	}

	at := 10 * time.Millisecond
	for _, a := range pl.pubs {
		a := a
		k.At(at, func() {
			ev := nodes[a.node].Publish(matching.Content{a.pat}, 0)
			core_[ev.ID] = true
		})
		at += publishGap
	}
	chains := pl.chains()
	for w := 0; w < flushWaves; w++ {
		at += 150 * time.Millisecond
		for _, a := range chains {
			a := a
			k.At(at, func() {
				nodes[a.node].Publish(matching.Content{a.pat}, 0)
			})
			at += publishGap
		}
	}
	k.Run(at + 3*time.Second)
	for _, e := range engines {
		e.Stop()
	}
	return sets, nil
}

// runLive replays the plan over real UDP sockets and polls after each
// flush wave until the delivered sets match the simulator's reference
// (or the wave budget runs out — the comparison in Run then reports
// the divergence).
func runLive(c Case, pl *plan, want deliveredSets) (deliveredSets, error) {
	var mu sync.Mutex
	core_, sets := make(map[ident.EventID]bool), newDeliveredSets(c.N)

	mkcfg := func(i int) live.Config {
		id := ident.NodeID(i)
		return live.Config{
			Algorithm:      c.Algorithm,
			GossipInterval: gossipInterval,
			DropProb:       dropProb,
			OnDeliver: func(ev *wire.Event, recovered bool) {
				mu.Lock()
				if core_[ev.ID] {
					sets[id][ev.ID] = true
				}
				mu.Unlock()
			},
		}
	}
	var cluster *live.Cluster
	var err error
	if c.Hosted {
		cluster, err = live.NewDispatcherCluster(c.N, maxDegree, c.Seed, live.DispatcherConfig{}, mkcfg)
	} else {
		cluster, err = live.NewCluster(c.N, maxDegree, c.Seed, mkcfg)
	}
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	for i, ps := range pl.subs {
		for _, p := range ps {
			cluster.Nodes[i].Subscribe(p)
		}
	}
	if err := waitFor(5*time.Second, func() bool {
		for _, n := range cluster.Nodes {
			if n.KnownPatternCount() < patternCount {
				return false
			}
		}
		return true
	}); err != nil {
		return nil, fmt.Errorf("subscription propagation: %w", err)
	}

	for _, a := range pl.pubs {
		id := cluster.Nodes[a.node].Publish(matching.Content{a.pat})
		mu.Lock()
		core_[id] = true
		mu.Unlock()
		time.Sleep(publishGap)
	}

	converged := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return sets.equal(want)
	}
	chains := pl.chains()
	for w := 0; w < flushWaves && !converged(); w++ {
		for _, a := range chains {
			cluster.Nodes[a.node].Publish(matching.Content{a.pat})
			time.Sleep(publishGap)
		}
		_ = waitFor(waveBudget, converged)
	}

	mu.Lock()
	defer mu.Unlock()
	out := newDeliveredSets(c.N)
	for i := range sets {
		for id := range sets[i] {
			out[i][id] = true
		}
	}
	return out, nil
}

// waitFor polls cond every few milliseconds until it holds or the
// deadline passes.
func waitFor(d time.Duration, cond func() bool) error {
	deadline := time.Now().Add(d)
	for {
		if cond() {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("condition not reached within %v", d)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
