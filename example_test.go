package epidemic_test

import (
	"fmt"
	"time"

	epidemic "repro"
)

// ExampleRun simulates a small dispatching network on reliable links:
// without loss, best-effort routing already delivers everything.
func ExampleRun() {
	p := epidemic.DefaultParams()
	p.N = 10
	p.Duration = 2 * time.Second
	p.PublishRate = 20
	p.Network.LossRate = 0
	p.Network.OOBLossRate = 0

	res, err := epidemic.Run(p)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("delivery rate: %.3f\n", res.DeliveryRate)
	// Output:
	// delivery rate: 1.000
}

// ExampleRun_recovery shows epidemic recovery lifting delivery on
// lossy links. The exact numbers are deterministic under the seed.
func ExampleRun_recovery() {
	base := epidemic.DefaultParams()
	base.N = 30
	base.Duration = 3 * time.Second
	base.PublishRate = 20

	for _, algo := range []epidemic.Algorithm{epidemic.NoRecovery, epidemic.CombinedPull} {
		p := base
		p.Algorithm = algo
		res, err := epidemic.Run(p)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("%s beats baseline: %v\n", algo, res.DeliveryRate > 0.8)
	}
	// Output:
	// no-recovery beats baseline: false
	// combined-pull beats baseline: true
}

// ExampleParseAlgorithm converts user input to an Algorithm.
func ExampleParseAlgorithm() {
	a, err := epidemic.ParseAlgorithm("publisher-pull")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(a, "needs routes:", a.NeedsRoutes())
	// Output:
	// publisher-pull needs routes: true
}
