// Package matching implements the paper's content model (Sec. IV-A,
// "Events, subscriptions, and matching"): an event is a short sequence
// of numbers drawn uniformly from a universe of Π patterns, an event
// pattern is a single number, and an event matches a subscription when
// its content contains the subscribed number. Each dispatcher
// subscribes to πmax distinct patterns; each event matches at most
// three patterns (paper footnote 5).
package matching

import (
	"math/rand"
	"slices"

	"repro/internal/ident"
)

// Content is the content of an event: the sorted, de-duplicated set of
// pattern numbers it carries. Length is at most the generator's
// maxMatch (3 in the paper).
type Content []ident.PatternID

// Matches reports whether the content contains pattern p.
func (c Content) Matches(p ident.PatternID) bool {
	for _, x := range c {
		if x == p {
			return true
		}
	}
	return false
}

// MatchesAny reports whether any pattern in ps matches the content.
func (c Content) MatchesAny(ps []ident.PatternID) bool {
	for _, p := range ps {
		if c.Matches(p) {
			return true
		}
	}
	return false
}

// Clone returns an independent copy of the content.
func (c Content) Clone() Content {
	out := make(Content, len(c))
	copy(out, c)
	return out
}

// Set returns the content as a pattern bitset. The tiered PatternSet
// represents every pattern identifier, so the set is always exact.
func (c Content) Set() (s ident.PatternSet) {
	for _, p := range c {
		s.Add(p)
	}
	return s
}

// Universe describes the pattern space of a simulation.
type Universe struct {
	// NumPatterns is Π, the total number of patterns (70 in the paper).
	NumPatterns int
	// MaxMatch bounds how many patterns one event can match (3).
	MaxMatch int
}

// DefaultUniverse returns the paper's content-model constants.
func DefaultUniverse() Universe {
	return Universe{NumPatterns: 70, MaxMatch: 3}
}

// RandomContent generates event content: MaxMatch numbers drawn
// uniformly (with replacement) from [0, Π), de-duplicated and sorted.
// Duplicates make some events match fewer than MaxMatch patterns,
// exactly as with the paper's "randomly-generated sequence of numbers".
func (u Universe) RandomContent(rng *rand.Rand) Content {
	out := make(Content, 0, u.MaxMatch)
	for i := 0; i < u.MaxMatch; i++ {
		p := ident.PatternID(rng.Intn(u.NumPatterns))
		if !out.Matches(p) {
			out = append(out, p)
		}
	}
	slices.Sort(out)
	return out
}

// RandomSubscriptions draws k distinct patterns uniformly from the
// universe: the subscription set of one dispatcher (k = πmax).
func (u Universe) RandomSubscriptions(k int, rng *rand.Rand) []ident.PatternID {
	if k > u.NumPatterns {
		k = u.NumPatterns
	}
	perm := rng.Perm(u.NumPatterns)[:k]
	out := make([]ident.PatternID, k)
	for i, p := range perm {
		out[i] = ident.PatternID(p)
	}
	slices.Sort(out)
	return out
}

// Interest is the set of patterns one dispatcher is locally subscribed
// to, with O(1) matching. Membership lives in a tiered PatternSet
// bitset — two inline machine words for the paper's Π=70 universe,
// spilling to sparse words above Π=128 — so the per-event match on the
// routing path is a handful of shifts instead of map probes for every
// representable identifier.
type Interest struct {
	patterns []ident.PatternID
	set      ident.PatternSet
}

// NewInterest builds an Interest from a pattern list.
func NewInterest(ps []ident.PatternID) *Interest {
	in := &Interest{
		patterns: append([]ident.PatternID(nil), ps...),
	}
	for _, p := range ps {
		in.set.Add(p)
	}
	return in
}

// Has reports whether p is subscribed.
func (in *Interest) Has(p ident.PatternID) bool {
	return in.set.Has(p)
}

// Patterns returns the subscribed patterns. The slice is owned by the
// Interest and must not be mutated.
func (in *Interest) Patterns() []ident.PatternID { return in.patterns }

// Set returns the bitset of subscribed patterns.
func (in *Interest) Set() ident.PatternSet {
	return in.set
}

// Len returns the number of subscribed patterns.
func (in *Interest) Len() int { return len(in.patterns) }

// AppendMatchedTo appends the subscribed patterns contained in content
// to dst, in content order, and returns the extended slice. It never
// allocates when dst has capacity — the forwarding-path replacement
// for MatchedBy.
func (in *Interest) AppendMatchedTo(dst []ident.PatternID, c Content) []ident.PatternID {
	for _, p := range c {
		if in.Has(p) {
			dst = append(dst, p)
		}
	}
	return dst
}

// MatchedSet returns the subscribed patterns contained in content as a
// bitset. Allocation-free within the inline tier.
func (in *Interest) MatchedSet(c Content) ident.PatternSet {
	return c.Set().Intersect(in.set)
}

// MatchedBy returns the subscribed patterns contained in content, in
// content order. Returns nil when nothing matches. It allocates a
// fresh slice per call; hot paths use AppendMatchedTo or MatchedSet.
func (in *Interest) MatchedBy(c Content) []ident.PatternID {
	var out []ident.PatternID
	return in.AppendMatchedTo(out, c)
}

// Matches reports whether the content matches at least one subscribed
// pattern.
func (in *Interest) Matches(c Content) bool {
	for _, p := range c {
		if in.set.Has(p) {
			return true
		}
	}
	return false
}
