package bench

import (
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/scenario"
)

// AdaptiveChurn measures the closed-loop controller on its intended
// worst case: a hybrid push/pull run under node churn and link loss,
// so every round pays for the estimator update, the setpoint rules,
// and (when bands are crossed) mode and walk switches on top of the
// usual gossip work. Compare with EndToEnd (static combined pull,
// no faults) for the adaptation overhead.
func AdaptiveChurn(b *testing.B) {
	var events uint64
	var runner scenario.Runner
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := scenario.DefaultParams()
		p.Seed = int64(i + 1)
		p.N = 25
		p.Duration = 2 * time.Second
		p.MeasureFrom = 300 * time.Millisecond
		p.MeasureTo = 1500 * time.Millisecond
		p.PublishRate = 15
		p.Algorithm = core.Hybrid
		p.Gossip = core.DefaultConfig(core.Hybrid)
		p.Adapt = &adapt.Config{}
		p.Network.LossRate = 0.05
		p.Network.OOBLossRate = 0.05
		p.FaultPlan = faults.ChurnPlan(p.Seed, p.N, 2, p.Duration*3/5, 300*time.Millisecond)
		res, err := runner.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		events += res.KernelEvents
	}
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "simevents/s")
	}
}
