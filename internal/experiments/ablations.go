package experiments

import (
	"fmt"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/flood"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// This file contains experiments beyond the paper: sensitivity sweeps
// for the constants the paper leaves unspecified, and ablations for
// the extensions DESIGN.md lists (buffer replacement policies after
// the paper's [13] discussion; the adaptive gossip interval suggested
// in Sec. IV-E via [14]). They are registered in the generators map in
// experiments.go under "x-" identifiers.

// xPForward sweeps the forwarding probability: the paper names the
// parameter but never gives its value; this sweep documents why 0.9 is
// the calibrated default (delivery saturates while overhead keeps
// climbing).
func xPForward(opt Options) ([]Figure, error) {
	xs := []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	if opt.Quick {
		xs = []float64{0.5, 1.0}
	}
	p0 := base(opt, 10*time.Second)
	s := sweep{
		xs:         xs,
		algorithms: []core.Algorithm{core.Push, core.CombinedPull},
		configure:  func(p *scenario.Params, x float64) { p.Gossip.PForward = x },
		measures: []func(scenario.Result) float64{
			func(r scenario.Result) float64 { return round2(r.DeliveryRate) },
			func(r scenario.Result) float64 { return round2(r.GossipPerDispatcher) },
		},
	}
	both, err := s.run(p0)
	if err != nil {
		return nil, err
	}
	return []Figure{
		{
			ID: "x-pforward-delivery", Title: "Delivery vs Pforward (ε=0.1)",
			XLabel: "Pforward", YLabel: "delivery rate", Series: both[0],
		},
		{
			ID: "x-pforward-overhead", Title: "Gossip overhead vs Pforward (ε=0.1)",
			XLabel: "Pforward", YLabel: "gossip msgs per dispatcher", Series: both[1],
		},
	}, nil
}

// xPSource sweeps the publisher-side probability of combined pull from
// pure subscriber-based (0) to pure publisher-based (1).
func xPSource(opt Options) ([]Figure, error) {
	xs := []float64{0, 0.25, 0.5, 0.75, 1}
	if opt.Quick {
		xs = []float64{0, 1}
	}
	p0 := base(opt, 10*time.Second)
	s := sweep{
		xs:         xs,
		algorithms: []core.Algorithm{core.CombinedPull},
		configure:  func(p *scenario.Params, x float64) { p.Gossip.PSource = x },
		measures: []func(scenario.Result) float64{
			func(r scenario.Result) float64 { return round2(r.DeliveryRate) },
		},
	}
	series, err := s.runOne(p0)
	if err != nil {
		return nil, err
	}
	series[0].Name = "combined-pull"
	return []Figure{{
		ID:     "x-psource",
		Title:  "Combined pull delivery vs Psource (ε=0.1)",
		XLabel: "Psource (probability of a publisher-based round)",
		YLabel: "delivery rate",
		Series: series,
		Notes:  []string{"0 = always subscriber-based, 1 = always publisher-based; the mix wins"},
	}}, nil
}

// xBufferPolicy compares FIFO (the paper), random replacement, and LRU
// under scarce buffers, where the policy matters most.
func xBufferPolicy(opt Options) ([]Figure, error) {
	xs := []float64{250, 500, 1000, 1500}
	if opt.Quick {
		xs = []float64{250, 1000}
	}
	p0 := base(opt, 10*time.Second)
	policies := []struct {
		name   string
		policy cache.Policy
	}{
		{"fifo (paper)", cache.FIFOPolicy},
		{"random", cache.RandomPolicy},
		{"lru", cache.LRUPolicy},
	}
	fig := Figure{
		ID:     "x-bufferpolicy",
		Title:  "Buffer replacement policy vs delivery, combined pull (ε=0.1)",
		XLabel: "β (buffer size)",
		YLabel: "delivery rate",
	}
	for _, pol := range policies {
		pol := pol
		s := sweep{
			xs:         xs,
			algorithms: []core.Algorithm{core.CombinedPull},
			configure: func(p *scenario.Params, x float64) {
				p.Gossip.BufferSize = int(x)
				p.Gossip.BufferPolicy = pol.policy
			},
			measures: []func(scenario.Result) float64{
				func(r scenario.Result) float64 { return round2(r.DeliveryRate) },
			},
		}
		series, err := s.runOne(p0)
		if err != nil {
			return nil, err
		}
		series[0].Name = pol.name
		fig.Series = append(fig.Series, series[0])
	}
	return []Figure{fig}, nil
}

// xPureGossip reproduces the paper's Sec. V comparison against
// hpcast-style pure gossip dissemination (ref. [10]): gossip as the
// only routing mechanism versus the paper's tree routing plus epidemic
// recovery. Metrics: delivery rate and total event-message cost per
// useful delivery.
func xPureGossip(opt Options) ([]Figure, error) {
	fanouts := []int{2, 3, 4, 5}
	if opt.Quick {
		fanouts = []int{2, 4}
	}
	p0 := base(opt, 10*time.Second)

	// Tree-based reference: combined pull at the same load.
	ref := p0
	ref.Algorithm = core.CombinedPull
	refRes, err := scenario.Run(ref)
	if err != nil {
		return nil, err
	}
	refDelivery := round2(refRes.DeliveryRate)
	gossipTotal := refRes.GossipPerDispatcher * float64(ref.N)
	eventTotal := 0.0
	if refRes.GossipEventRatio > 0 {
		eventTotal = gossipTotal / refRes.GossipEventRatio
	}
	refCost := round2((gossipTotal + eventTotal) / float64(refRes.Deliveries))

	fp := flood.DefaultParams()
	fp.Seed = opt.Seed
	fp.N = p0.N
	fp.NumPatterns = p0.NumPatterns
	fp.MaxMatch = p0.MaxMatch
	fp.PatternsPerNode = p0.PatternsPerNode
	fp.PublishRate = p0.PublishRate
	fp.LossRate = p0.Network.LossRate
	fp.Duration = p0.Duration

	delivery := Figure{
		ID:     "x-puregossip-delivery",
		Title:  "Pure gossip dissemination (hpcast-style) vs tree + combined pull: delivery",
		XLabel: "gossip fanout",
		YLabel: "delivery rate",
		Notes:  []string{"paper Sec. V: pure gossip guarantees nothing even without faults"},
	}
	cost := Figure{
		ID:     "x-puregossip-cost",
		Title:  "Pure gossip vs tree + combined pull: messages per useful delivery",
		XLabel: "gossip fanout",
		YLabel: "transmissions per delivered event",
		Notes:  []string{"pure gossip pushes full events to random (often uninterested) nodes"},
	}
	var pg, pc, rd, rc Series
	pg.Name, pc.Name = "pure gossip", "pure gossip"
	rd.Name, rc.Name = "tree + combined pull", "tree + combined pull"
	for _, fanout := range fanouts {
		f := fp
		f.Fanout = fanout
		res, err := flood.Run(f)
		if err != nil {
			return nil, err
		}
		x := float64(fanout)
		pg.Points = append(pg.Points, Point{X: x, Y: round2(res.DeliveryRate)})
		pc.Points = append(pc.Points, Point{X: x, Y: round2(res.MessagesPerDelivery)})
		rd.Points = append(rd.Points, Point{X: x, Y: refDelivery})
		rc.Points = append(rc.Points, Point{X: x, Y: refCost})
	}
	delivery.Series = []Series{rd, pg}
	cost.Series = []Series{rc, pc}
	return []Figure{delivery, cost}, nil
}

// xVariance reproduces the paper's "Effect of randomization" claim
// (Sec. IV-A): across 10 seeds the delivery rate varies by only
// 1–2 %, so single runs are representative.
func xVariance(opt Options) ([]Figure, error) {
	seeds := 10
	algos := []core.Algorithm{core.NoRecovery, core.Push, core.CombinedPull}
	if opt.Quick {
		seeds = 3
		algos = algos[:2]
	}
	p0 := base(opt, 10*time.Second)
	fig := Figure{
		ID:     "x-variance",
		Title:  fmt.Sprintf("Delivery-rate spread across %d seeds (ε=0.1)", seeds),
		XLabel: "metric (1=mean, 2=min, 3=max, 4=rel. spread %)",
		YLabel: "delivery rate / percent",
		Notes: []string{
			"paper Sec. IV-A: variations across seeds are limited, around 1%–2%",
		},
	}
	for _, a := range algos {
		p := p0
		p.Algorithm = a
		stats, err := scenario.RunSeeds(p, seeds)
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, Series{
			Name: a.String(),
			Points: []Point{
				{X: 1, Y: round2(stats.Mean)},
				{X: 2, Y: round2(stats.Min)},
				{X: 3, Y: round2(stats.Max)},
				{X: 4, Y: round2(stats.RelSpread() * 100)},
			},
		})
	}
	return []Figure{fig}, nil
}

// xLatency quantifies the recovery latency the paper only discusses
// qualitatively (Sec. IV-C: "the push approach has a bigger recovery
// latency than pull"): publish→delivery percentiles of recovered
// events per algorithm.
func xLatency(opt Options) ([]Figure, error) {
	algos := []core.Algorithm{core.Push, core.SubscriberPull, core.PublisherPull, core.CombinedPull, core.RandomPull}
	if opt.Quick {
		algos = []core.Algorithm{core.Push, core.CombinedPull}
	}
	p0 := base(opt, 10*time.Second)
	var params []scenario.Params
	for _, a := range algos {
		p := p0
		p.Algorithm = a
		params = append(params, p)
	}
	results, err := scenario.RunAll(params)
	if err != nil {
		return nil, err
	}
	fig := Figure{
		ID:     "x-latency",
		Title:  "Recovery latency percentiles per algorithm (ε=0.1)",
		XLabel: "percentile",
		YLabel: "publish→recovered delivery latency (ms)",
		Notes:  []string{"quantifies the paper's qualitative claim that push recovers slower than pull"},
	}
	ms := func(t sim.Time) float64 { return round2(float64(t) / float64(time.Millisecond)) }
	for i, r := range results {
		fig.Series = append(fig.Series, Series{
			Name: algos[i].String(),
			Points: []Point{
				{X: 50, Y: ms(r.RecoveryLatencyP50)},
				{X: 99, Y: ms(r.RecoveryLatencyP99)},
			},
		})
	}
	return []Figure{fig}, nil
}
