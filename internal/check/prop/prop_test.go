package prop

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
)

// TestRandomScenariosHoldInvariants is the property test: a
// deterministic stream of generated cases, each run under every
// algorithm with all five monitors armed. A failure is shrunk to the
// smallest still-failing case before it is reported, together with
// the checker's own reproducer line.
func TestRandomScenariosHoldInvariants(t *testing.T) {
	cases := 12
	if testing.Short() {
		cases = 4
	}
	rng := rand.New(rand.NewSource(2026))
	for i := 0; i < cases; i++ {
		c := Generate(rng)
		t.Logf("case %d: %s", i, c)
		if err := Run(c); err != nil {
			small, smallErr := Shrink(c, err)
			t.Fatalf("invariant violated.\noriginal: [%s]\n  %v\nshrunk:   [%s]\n  %v",
				c, err, small, smallErr)
		}
	}
}

// TestShrinkReducesAFailingCase pins the shrinker mechanics with a
// synthetic failure predicate — Run itself should never fail, so the
// shrinker's reduction order is tested against a stub by construction:
// the generated case is run through the same reduction steps with
// Run swapped for a predicate via the exported API. Here we simply
// check the shrinker keeps a genuinely clean case intact: shrinking a
// passing case must return it unchanged with the original error.
func TestShrinkReducesAFailingCase(t *testing.T) {
	c := Case{Seed: 3, N: 8, PublishRate: 5, Duration: 400e6}
	orig := errStub{}
	got, err := Shrink(c, orig)
	if got != c {
		t.Errorf("shrinking a passing case changed it: %+v -> %+v", c, got)
	}
	if err != orig {
		t.Errorf("shrinking a passing case replaced the error: %v", err)
	}
}

type errStub struct{}

func (errStub) Error() string { return "stub" }

// TestAdaptiveCalmMetamorphicProperty: take any generated case, strip
// away every disturbance (loss, churn, reconfiguration), arm the
// controller, and the run must converge to minimum-overhead knobs with
// zero structural switches — under full invariant checking, so knob
// bounds and dwell are judged by the adaptation monitor at the same
// time.
func TestAdaptiveCalmMetamorphicProperty(t *testing.T) {
	cases := 6
	if testing.Short() {
		cases = 2
	}
	rng := rand.New(rand.NewSource(515))
	var r scenario.Runner
	for i := 0; i < cases; i++ {
		c := Generate(rng)
		c.LossRate, c.OOBLossRate, c.ChurnRate, c.Reconfig = 0, 0, 0, 0
		c.Adaptive = true
		t.Logf("case %d: %s", i, c)
		for _, alg := range []core.Algorithm{core.CombinedPull, core.Hybrid} {
			p := c.Params(alg)
			res, err := r.Run(p)
			if err != nil {
				t.Fatalf("case [%s] %s: calm checked run failed: %v", c, alg, err)
			}
			a := res.Adapt
			norm := p.Adapt.Normalized(p.Gossip.GossipInterval)
			if a.MaxInterval != norm.IntervalMax {
				t.Errorf("case [%s] %s: interval never relaxed to %v (max seen %v)", c, alg, norm.IntervalMax, a.MaxInterval)
			}
			if a.MaxFanout != norm.FanoutMin {
				t.Errorf("case [%s] %s: fanout rose to %d on a calm run", c, alg, a.MaxFanout)
			}
			if a.ModeSwitches != 0 || a.WalkSwitches != 0 {
				t.Errorf("case [%s] %s: structural switches on a calm run: %+v", c, alg, a)
			}
			if a.MeanLoss != 0 {
				t.Errorf("case [%s] %s: nonzero loss estimate %v on lossless links", c, alg, a.MeanLoss)
			}
		}
	}
}

// TestShardedRunsBitIdentical is the parallel-executor property: over
// generated cases (loss, reconfiguration, churn) and every algorithm,
// a sharded run must produce a Result bit-identical to the sequential
// one. Invariant checking is off — Shards > 1 rejects it — so the
// property complements TestRandomScenariosHoldInvariants rather than
// repeating it. The same Runner serves both runs, so kernel/pool reuse
// across the mode switch is exercised too.
func TestShardedRunsBitIdentical(t *testing.T) {
	cases := 6
	if testing.Short() {
		cases = 2
	}
	rng := rand.New(rand.NewSource(777))
	var r scenario.Runner
	for i := 0; i < cases; i++ {
		c := Generate(rng)
		shards := 2 + rng.Intn(4)
		t.Logf("case %d: %s shards=%d", i, c, shards)
		for _, alg := range c.Algorithms() {
			p := c.Params(alg)
			p.Check = nil
			// Self-stabilizing repair rejects Shards > 1; the sharded
			// property runs the case under the oracle instead.
			p.Repair = scenario.RepairOracle
			seq, err := r.Run(p)
			if err != nil {
				t.Fatalf("case [%s] %s sequential: %v", c, alg, err)
			}
			p.Shards = shards
			par, err := r.Run(p)
			if err != nil {
				t.Fatalf("case [%s] %s shards=%d: %v", c, alg, shards, err)
			}
			seq.Params, par.Params = scenario.Params{}, scenario.Params{}
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("case [%s] %s: sharded result differs\nseq: %+v\npar: %+v", c, alg, seq, par)
			}
		}
	}
}
