package core

import (
	"testing"
	"time"

	"repro/internal/ident"
	"repro/internal/topology"
)

// TestEvictionKeepsIndicesConsistent: once an event falls out of the
// β-bounded buffer, neither push digests nor pull serving may still
// offer it.
func TestEvictionKeepsIndicesConsistent(t *testing.T) {
	topo := topology.NewLine(3)
	subs := [][]ident.PatternID{nil, {5}, {5}}
	cfg := deterministicCfg(SubscriberPull)
	cfg.BufferSize = 2 // tiny buffer: the lost event is evicted quickly
	r := newRig(t, topo, subs, cfg)

	r.nodes[0].Publish(content(5), 0)
	r.run(50 * time.Millisecond)
	r.breakLink(1, 2)
	lost := r.nodes[0].Publish(content(5), 0)
	r.run(50 * time.Millisecond)
	r.restoreLink(1, 2)
	// Three more events push the lost one out of node 1's buffer
	// (β=2) before node 2 can pull it.
	for i := 0; i < 3; i++ {
		r.nodes[0].Publish(content(5), 0)
	}
	r.run(2 * time.Second)

	if r.has(2, lost.ID) {
		t.Fatal("event recovered although every buffer evicted it")
	}
	// The engines must not have crashed on stale index entries, and
	// node 2's Lost buffer still holds the unrecoverable entry.
	if r.engines[2].LostLen() == 0 {
		t.Fatal("lost entry vanished without recovery")
	}
	if got := r.engines[1].BufferLen(); got > 2 {
		t.Fatalf("buffer holds %d events, capacity 2", got)
	}
}

// TestLostTTLExpiryStopsGossip: entries older than LostTTL stop being
// requested, bounding pull traffic for unrecoverable events.
func TestLostTTLExpiryStopsGossip(t *testing.T) {
	topo := topology.NewLine(3)
	subs := [][]ident.PatternID{nil, {5}, {5}}
	cfg := deterministicCfg(SubscriberPull)
	cfg.BufferSize = 2
	cfg.LostTTL = 300 * time.Millisecond
	r := newRig(t, topo, subs, cfg)

	r.nodes[0].Publish(content(5), 0)
	r.run(50 * time.Millisecond)
	r.breakLink(1, 2)
	r.nodes[0].Publish(content(5), 0)
	r.run(50 * time.Millisecond)
	r.restoreLink(1, 2)
	for i := 0; i < 3; i++ {
		r.nodes[0].Publish(content(5), 0) // evict the lost event everywhere
	}
	r.run(2 * time.Second)

	// After the TTL the Lost buffer drains and rounds are skipped.
	if got := r.engines[2].LostLen(); got != 0 {
		t.Fatalf("LostLen = %d after TTL, want 0", got)
	}
	before := r.engines[2].Stats().RoundsStarted
	r.run(time.Second)
	after := r.engines[2].Stats().RoundsStarted
	if after != before {
		t.Fatalf("gossip rounds still started (%d→%d) with nothing recoverable", before, after)
	}
}

// TestPublisherPullStaleRouteDegradesGracefully: when the recorded
// route is severed mid-walk, the gossip message dies at the broken
// link without recovering — and without crashing anything.
func TestPublisherPullStaleRouteDegradesGracefully(t *testing.T) {
	topo := topology.NewLine(4) // 0-1-2-3, subscriber at 3
	subs := [][]ident.PatternID{nil, nil, nil, {5}}
	cfg := deterministicCfg(PublisherPull)
	// A long interval keeps every gossip round after the route is
	// severed below; the test asserts that assumption explicitly.
	cfg.GossipInterval = 10 * time.Second
	r := newRig(t, topo, subs, cfg)
	lost := loseOneEvent(r, 2, 3)
	if n := r.engines[3].Stats().RoundsStarted + r.engines[3].Stats().RoundsSkipped; n != 0 {
		t.Fatalf("a gossip round fired before the route was severed (%d)", n)
	}
	// Permanently break the recorded route (0-1): the walk toward the
	// publisher dies at the missing link, and nobody else caches the
	// event (nodes 1 and 2 are not subscribers).
	r.breakLink(0, 1)
	r.run(40 * time.Second) // several gossip rounds
	if r.has(3, lost.ID) {
		t.Fatal("recovered through a severed route — impossible")
	}
	if r.engines[3].Stats().RoundsStarted == 0 {
		t.Fatal("gossiper never tried")
	}
}

// TestCombinedPullFallsBackAcrossModes: with PSource=1 the combined
// engine still recovers via the subscriber side when no route is
// known.
func TestCombinedPullFallsBackAcrossModes(t *testing.T) {
	topo := topology.NewLine(3)
	subs := [][]ident.PatternID{nil, {5}, {5}}
	cfg := deterministicCfg(CombinedPull)
	cfg.PSource = 1.0 // always prefer publisher-based...
	r := newRig(t, topo, subs, cfg)

	// Lose the FIRST event at node 2: no prior event from source 0
	// means no recorded route, so the publisher side has nothing to
	// walk and the engine must fall back to subscriber-based pull.
	r.breakLink(1, 2)
	lost := r.nodes[0].Publish(content(5), 0)
	r.run(50 * time.Millisecond)
	r.restoreLink(1, 2)
	r.nodes[0].Publish(content(5), 0)
	r.run(2 * time.Second)
	if !r.has(2, lost.ID) {
		t.Fatal("combined pull did not fall back to subscriber-based recovery")
	}
}

// TestPushDigestExcludesOwnedEvents: a subscriber never requests
// events it already has, even when every digest offers them.
func TestPushDigestExcludesOwnedEvents(t *testing.T) {
	topo := topology.NewLine(3)
	subs := [][]ident.PatternID{nil, {5}, {5}}
	r := newRig(t, topo, subs, deterministicCfg(Push))
	for i := 0; i < 5; i++ {
		r.nodes[0].Publish(content(5), 0)
	}
	r.run(2 * time.Second)
	for i, e := range r.engines {
		if got := e.Stats().RequestsSent; got != 0 {
			t.Fatalf("engine %d sent %d requests with nothing missing", i, got)
		}
	}
}
