package scenario

import (
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/trace"
)

// TestZipfWorkloadConcentratesInterest pins the point of correlated
// skew: when both content and subscriptions follow the same popularity
// ranking, hot events meet many subscribers, so the mean expected
// audience rises well above the uniform workload's.
func TestZipfWorkloadConcentratesInterest(t *testing.T) {
	p := quickParams()
	uniform, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Workload = Workload{ZipfContent: 1.0, ZipfSubscriptions: 1.0}
	skewed, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if skewed.ReceiversPerEvent <= uniform.ReceiversPerEvent {
		t.Fatalf("correlated Zipf skew did not raise receivers/event: uniform %v, skewed %v",
			uniform.ReceiversPerEvent, skewed.ReceiversPerEvent)
	}
	// Skew must stay deterministic under the seed.
	again, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if again.DeliveryRate != skewed.DeliveryRate || again.KernelEvents != skewed.KernelEvents {
		t.Fatal("Zipf workload is not deterministic under the seed")
	}
}

// TestHotPublishersConcentrateLoad verifies the hot-spot split via the
// trace: hot publishers carry ~HotShare of the events, and the
// aggregate publish volume matches the uniform workload's ballpark.
func TestHotPublishersConcentrateLoad(t *testing.T) {
	p := quickParams()
	p.Trace = trace.New(100_000)
	p.Workload = Workload{HotPublishers: 2, HotShare: 0.7}
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	var hot, total uint64
	for _, r := range p.Trace.Filter(func(r trace.Record) bool { return r.Kind == trace.Publish }) {
		total++
		if int(r.Node) < 2 {
			hot++
		}
	}
	if total != res.EventsPublished {
		t.Fatalf("trace saw %d publishes, result says %d", total, res.EventsPublished)
	}
	share := float64(hot) / float64(total)
	if share < 0.6 || share > 0.8 {
		t.Fatalf("hot publishers carried %.2f of the load, want ≈0.70", share)
	}
}

// TestSubscriptionChurnRuns exercises churn end to end: swaps happen,
// the run completes with sane metrics, and replay is deterministic.
func TestSubscriptionChurnRuns(t *testing.T) {
	p := quickParams()
	p.Algorithm = core.CombinedPull
	p.Gossip = core.DefaultConfig(core.CombinedPull)
	p.Workload = Workload{SubChurnRate: 25}
	a, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.SubChurns == 0 {
		t.Fatal("no subscription swaps at 25 swaps/s over 3 s")
	}
	if a.DeliveryRate <= 0 || a.DeliveryRate > 1 {
		t.Fatalf("DeliveryRate = %v under churn, want (0, 1]", a.DeliveryRate)
	}
	b, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.SubChurns != b.SubChurns || a.DeliveryRate != b.DeliveryRate || a.KernelEvents != b.KernelEvents {
		t.Fatalf("churn replay diverged: %d/%v/%d vs %d/%v/%d",
			a.SubChurns, a.DeliveryRate, a.KernelEvents, b.SubChurns, b.DeliveryRate, b.KernelEvents)
	}
}

func TestWorkloadValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Params)
		want string
	}{
		{"negative zipf", func(p *Params) { p.Workload.ZipfContent = -1 }, "Zipf"},
		{"hot share without hot publishers", func(p *Params) { p.Workload.HotShare = 0.5 }, "HotShare"},
		{"all publishers hot", func(p *Params) { p.Workload.HotPublishers = p.N }, "non-hot"},
		{"hot share above one", func(p *Params) { p.Workload.HotPublishers = 2; p.Workload.HotShare = 1.5 }, "HotShare"},
		{"negative churn", func(p *Params) { p.Workload.SubChurnRate = -3 }, "SubChurnRate"},
		{"churn with check", func(p *Params) {
			p.Workload.SubChurnRate = 5
			p.Check = &check.Options{Conservation: true}
		}, "Check"},
		{"churn with fault plan", func(p *Params) {
			p.Workload.SubChurnRate = 5
			p.FaultPlan = &faults.Plan{}
		}, "FaultPlan"},
		{"unknown metrics mode", func(p *Params) { p.MetricsMode = 99 }, "MetricsMode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := quickParams()
			tc.mut(&p)
			_, err := Run(p)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}
