package wire

import (
	"testing"

	"repro/internal/ident"
	"repro/internal/matching"
)

// FuzzDecode drives arbitrary bytes through the decoder: it must never
// panic, and on success the message must re-encode to a decodable
// form (not necessarily byte-identical — the decoder is the arbiter).
func FuzzDecode(f *testing.F) {
	for _, msg := range []Message{
		&Event{
			ID:          ident.EventID{Source: 3, Seq: 7},
			Content:     matching.Content{1, 2, 3},
			Tags:        []ident.PatternSeq{{Pattern: 1, Seq: 4}},
			Route:       []ident.NodeID{3, 1},
			PublishedAt: 99,
			PayloadLen:  4,
		},
		&Subscribe{Pattern: 9},
		&Unsubscribe{Pattern: 9},
		&GossipPush{Gossiper: 1, Pattern: 2, Digest: []ident.EventID{{Source: 1, Seq: 1}}},
		&GossipSubPull{Gossiper: 1, Pattern: 2, Wanted: []LostEntry{{Source: 1, Pattern: 2, Seq: 3}}},
		&GossipPubPull{Gossiper: 1, Source: 2, Route: []ident.NodeID{2, 4}, Next: 1},
		&GossipRandom{Gossiper: 1, Wanted: []LostEntry{{Source: 1, Pattern: 2, Seq: 3}}},
		&Request{Requester: 5, IDs: []ident.EventID{{Source: 2, Seq: 9}}},
		&Retransmit{Responder: 5, Events: []*Event{{ID: ident.EventID{Source: 1, Seq: 1}}}},

		// Boundary shapes per gossip message type: empty digests, the
		// zero-length route, multi-entry digests spanning sources and
		// patterns, and a multi-event retransmission carrying the full
		// event shape (tags, route, payload).
		&Event{ID: ident.EventID{Source: 0, Seq: 0}},
		&GossipPush{Gossiper: 2, Pattern: 0, Digest: nil},
		&GossipPush{Gossiper: 0, Pattern: 7, Digest: []ident.EventID{
			{Source: 0, Seq: 1}, {Source: 0, Seq: 2}, {Source: 4, Seq: 1}, {Source: 9, Seq: 200},
		}},
		&GossipSubPull{Gossiper: 3, Pattern: 5, Wanted: nil},
		&GossipSubPull{Gossiper: 3, Pattern: 5, Wanted: []LostEntry{
			{Source: 1, Pattern: 5, Seq: 1}, {Source: 1, Pattern: 5, Seq: 2}, {Source: 6, Pattern: 5, Seq: 40},
		}},
		&GossipPubPull{Gossiper: 8, Source: 2, Wanted: []LostEntry{
			{Source: 2, Pattern: 1, Seq: 3}, {Source: 2, Pattern: 9, Seq: 3},
		}, Route: []ident.NodeID{2, 7, 4, 8}, Next: 3},
		&GossipPubPull{Gossiper: 1, Source: 0, Wanted: nil, Route: nil, Next: 0},
		&GossipRandom{Gossiper: 6, Wanted: nil},
		&GossipRandom{Gossiper: 6, Wanted: []LostEntry{
			{Source: 0, Pattern: 0, Seq: 1}, {Source: 3, Pattern: 2, Seq: 9}, {Source: 3, Pattern: 4, Seq: 9},
		}},
		&Request{Requester: 4, IDs: nil},
		&Request{Requester: 4, IDs: []ident.EventID{
			{Source: 0, Seq: 1}, {Source: 1, Seq: 1}, {Source: 1, Seq: 2},
		}},
		&Retransmit{Responder: 2, Events: nil},
		&Retransmit{Responder: 2, Events: []*Event{
			{
				ID:          ident.EventID{Source: 4, Seq: 12},
				Content:     matching.Content{0, 5, 9},
				Tags:        []ident.PatternSeq{{Pattern: 0, Seq: 3}, {Pattern: 5, Seq: 1}},
				Route:       []ident.NodeID{4, 2, 0},
				PublishedAt: 12345,
				PayloadLen:  64,
			},
			{ID: ident.EventID{Source: 5, Seq: 1}, Content: matching.Content{2}},
		}},
	} {
		f.Add(Encode(msg))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(data)
		if err != nil {
			return
		}
		re := Encode(msg)
		if len(re) != msg.WireSize() {
			t.Fatalf("WireSize %d != encoded length %d for decoded %v",
				msg.WireSize(), len(re), msg.Kind())
		}
		if _, err := Decode(re); err != nil {
			t.Fatalf("re-encoding of decoded message does not decode: %v", err)
		}
	})
}
