// Command experiments regenerates the figures of the paper's
// evaluation (Sec. IV) and prints them as text tables.
//
// Usage:
//
//	experiments -fig 3a                 # one figure to stdout
//	experiments -fig all -out results/  # every figure, one file each
//	experiments -fig 2                  # print the Fig. 2 parameter table
//	experiments -list                   # list figure identifiers
//
// Flags:
//
//	-fig id        figure to regenerate (see -list), or "all"
//	-out dir       write results to dir/fig<id>.txt instead of stdout
//	-seed n        simulation seed (default 1)
//	-duration d    override per-run simulated time (e.g. 25s)
//	-quick         shrink sweeps for a fast smoke run
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		fig      = fs.String("fig", "", `figure to regenerate ("all", "2", or an id from -list)`)
		out      = fs.String("out", "", "directory to write per-figure result files")
		seed     = fs.Int64("seed", 1, "simulation seed")
		duration = fs.Duration("duration", 0, "override per-run simulated time")
		quick    = fs.Bool("quick", false, "shrink sweeps for a fast smoke run")
		list     = fs.Bool("list", false, "list figure identifiers and exit")
		svg      = fs.Bool("svg", false, "with -out: also write an SVG chart per sub-figure")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, id := range experiments.IDs() {
			title, err := experiments.Title(id)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "%-4s %s\n", id, title)
		}
		return nil
	}
	if *fig == "" {
		return fmt.Errorf("missing -fig (use -list to see identifiers)")
	}

	opt := experiments.Options{Seed: *seed, Duration: *duration, Quick: *quick}

	ids := []string{*fig}
	if *fig == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		if id == "2" {
			if err := writeResult(id, *out, stdout, printFig2); err != nil {
				return err
			}
			continue
		}
		start := time.Now()
		figs, err := experiments.Generate(id, opt)
		if err != nil {
			return fmt.Errorf("figure %s: %w", id, err)
		}
		err = writeResult(id, *out, stdout, func(w io.Writer) error {
			return experiments.RenderAll(figs, w)
		})
		if err != nil {
			return err
		}
		if *svg && *out != "" {
			for _, f := range figs {
				path := filepath.Join(*out, "fig"+f.ID+".svg")
				sf, err := os.Create(path)
				if err != nil {
					return err
				}
				if err := experiments.RenderSVG(f, sf); err != nil {
					sf.Close()
					return err
				}
				if err := sf.Close(); err != nil {
					return err
				}
			}
		}
		fmt.Fprintf(os.Stderr, "fig %-3s done in %v\n", id, time.Since(start).Round(time.Second))
	}
	if *fig == "all" {
		if err := writeResult("2", *out, stdout, printFig2); err != nil {
			return err
		}
	}
	return nil
}

// writeResult sends one figure's output to dir/fig<id>.txt or stdout.
func writeResult(id, dir string, stdout io.Writer, emit func(io.Writer) error) error {
	if dir == "" {
		return emit(stdout)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, "fig"+id+".txt")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printFig2 prints the paper's Fig. 2 parameter table with our
// defaults.
func printFig2(w io.Writer) error {
	rows := [][2]string{
		{"number of dispatchers", "N = 100"},
		{"maximum number of patterns per subscriber", "πmax = 2"},
		{"total number of patterns", "Π = 70"},
		{"patterns matched per event (max)", "3"},
		{"publish rate", "50 publish/s per dispatcher"},
		{"link error rate", "ε = 0.1"},
		{"interval between topological reconfigurations", "ρ = ∞"},
		{"buffer size", "β = 1500"},
		{"gossip interval", "T = 0.03 s"},
		{"overlay node degree (max)", "4"},
		{"link model", "10 Mbit/s, 100 µs propagation"},
		{"gossip forwarding probability (assumed)", "Pforward = 0.9"},
		{"combined-pull source probability (assumed)", "Psource = 0.5"},
		{"message size on the wire (assumed)", "200 bytes, events = gossip"},
		{"simulated time", "25 s"},
	}
	fmt.Fprintln(w, "# 2 — Simulation parameters and their default values (paper Fig. 2)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-48s %s\n", r[0], r[1])
	}
	return nil
}
