package wire

import (
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/ident"
	"repro/internal/matching"
)

// negativeSamples returns one representative encoding per message
// kind, each with every variable-length section populated, so that
// truncation and corruption sweeps cross all field boundaries. The
// payloads are zero-length: the payload region is synthetic filler
// that re-encodes as zeros, which the canonical-bytes assertions
// below could not distinguish from corruption (it gets its own test).
func negativeSamples() map[string]Message {
	return map[string]Message{
		"event": &Event{
			ID:          ident.EventID{Source: 3, Seq: 7},
			Content:     matching.Content{1, 2, 3},
			Tags:        []ident.PatternSeq{{Pattern: 1, Seq: 4}, {Pattern: 2, Seq: 9}},
			Route:       []ident.NodeID{3, 1},
			PublishedAt: 99,
		},
		"subscribe":   &Subscribe{Pattern: 9},
		"unsubscribe": &Unsubscribe{Pattern: 9},
		"gossip-push": &GossipPush{Gossiper: 1, Pattern: 2, Digest: []ident.EventID{
			{Source: 1, Seq: 1}, {Source: 4, Seq: 2},
		}},
		"gossip-sub-pull": &GossipSubPull{Gossiper: 1, Pattern: 2, Wanted: []LostEntry{
			{Source: 1, Pattern: 2, Seq: 3},
		}},
		"gossip-pub-pull": &GossipPubPull{Gossiper: 1, Source: 2, Wanted: []LostEntry{
			{Source: 2, Pattern: 1, Seq: 3},
		}, Route: []ident.NodeID{2, 4}, Next: 1},
		"gossip-random": &GossipRandom{Gossiper: 1, Wanted: []LostEntry{
			{Source: 1, Pattern: 2, Seq: 3},
		}},
		"request": &Request{Requester: 5, IDs: []ident.EventID{{Source: 2, Seq: 9}}},
		"retransmit": &Retransmit{Responder: 5, Events: []*Event{
			{ID: ident.EventID{Source: 1, Seq: 1}, Content: matching.Content{2}},
			{ID: ident.EventID{Source: 2, Seq: 4}, Tags: []ident.PatternSeq{{Pattern: 2, Seq: 1}}},
		}},
	}
}

// TestDecodeRejectsEveryTruncation feeds every strict prefix of every
// sample encoding to the decoder: each one must fail with
// ErrTruncated — never panic, never succeed on a short buffer.
func TestDecodeRejectsEveryTruncation(t *testing.T) {
	for name, msg := range negativeSamples() {
		t.Run(name, func(t *testing.T) {
			buf := Encode(msg)
			for i := 0; i < len(buf); i++ {
				m, err := Decode(buf[:i])
				if err == nil {
					t.Fatalf("prefix of %d/%d bytes decoded silently to %v", i, len(buf), m.Kind())
				}
				if !errors.Is(err, ErrTruncated) {
					t.Fatalf("prefix of %d/%d bytes: error %v, want ErrTruncated", i, len(buf), err)
				}
			}
		})
	}
}

// TestDecodeRejectsTrailingBytes appends garbage after each complete
// message: the decoder must refuse the oversized buffer.
func TestDecodeRejectsTrailingBytes(t *testing.T) {
	for name, msg := range negativeSamples() {
		t.Run(name, func(t *testing.T) {
			for _, extra := range [][]byte{{0x00}, {0xFF, 0x17, 0x2A}} {
				buf := append(Encode(msg), extra...)
				if m, err := Decode(buf); err == nil {
					t.Fatalf("%d trailing bytes decoded silently to %v", len(extra), m.Kind())
				} else if !errors.Is(err, ErrTrailing) {
					t.Fatalf("%d trailing bytes: error %v, want ErrTrailing", len(extra), err)
				}
			}
		})
	}
}

// TestDecodeRejectsOversizedCounts sets each sample's first count
// field to its 16-bit maximum while leaving the body short: the
// decoder must fail with ErrTruncated without panicking or allocating
// for elements that cannot exist.
func TestDecodeRejectsOversizedCounts(t *testing.T) {
	// Offsets of the first element-count field per kind.
	counts := map[string]struct {
		off   int
		width int
	}{
		"event":           {off: 19, width: 1}, // content count
		"gossip-push":     {off: 9, width: 2},
		"gossip-sub-pull": {off: 9, width: 2},
		"gossip-pub-pull": {off: 9, width: 2},
		"gossip-random":   {off: 5, width: 2},
		"request":         {off: 5, width: 2},
		"retransmit":      {off: 5, width: 2},
	}
	samples := negativeSamples()
	for name, loc := range counts {
		t.Run(name, func(t *testing.T) {
			buf := Encode(samples[name])
			if loc.width == 1 {
				buf[loc.off] = 0xFF
			} else {
				binary.LittleEndian.PutUint16(buf[loc.off:], 0xFFFF)
			}
			if m, err := Decode(buf); err == nil {
				t.Fatalf("oversized count decoded silently to %v", m.Kind())
			} else if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrTrailing) {
				t.Fatalf("oversized count: error %v, want ErrTruncated or ErrTrailing", err)
			}
		})
	}
}

// TestDecodeBitFlipsNeverPanicOrDesync flips every single bit of every
// sample encoding. Each mutation must either be rejected with a
// decoding error or produce a message whose canonical re-encoding is
// byte-identical to the mutated buffer — a flip may legitimately turn
// one valid message into another, but it must never put the decoder
// and encoder out of sync (silent acceptance of a non-canonical or
// half-read buffer).
func TestDecodeBitFlipsNeverPanicOrDesync(t *testing.T) {
	for name, msg := range negativeSamples() {
		t.Run(name, func(t *testing.T) {
			orig := Encode(msg)
			buf := make([]byte, len(orig))
			for bit := 0; bit < len(orig)*8; bit++ {
				copy(buf, orig)
				buf[bit/8] ^= 1 << (bit % 8)
				m, err := Decode(buf)
				if err != nil {
					continue
				}
				re := Encode(m)
				if string(re) != string(buf) {
					t.Fatalf("bit %d: decoded %v re-encodes to %d bytes not equal to the %d-byte input",
						bit, m.Kind(), len(re), len(buf))
				}
			}
		})
	}
}

// TestDecodePayloadIsSyntheticFiller pins the one intentional
// exception to canonical re-encoding: the event payload region is
// skipped, not stored, so corrupted filler decodes cleanly and
// re-encodes as zeros of the same length.
func TestDecodePayloadIsSyntheticFiller(t *testing.T) {
	ev := &Event{ID: ident.EventID{Source: 1, Seq: 2}, Content: matching.Content{5}, PayloadLen: 8}
	buf := Encode(ev)
	buf[len(buf)-1] ^= 0xFF // corrupt the last filler byte
	m, err := Decode(buf)
	if err != nil {
		t.Fatalf("corrupted filler rejected: %v", err)
	}
	re := Encode(m)
	if len(re) != len(buf) {
		t.Fatalf("re-encoded length %d, want %d", len(re), len(buf))
	}
	if re[len(re)-1] != 0 {
		t.Fatalf("filler re-encoded as %#x, want zeros", re[len(re)-1])
	}
}
