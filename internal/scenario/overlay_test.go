package scenario

import (
	"strings"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/topology"
)

// overlayChurnParams builds the convergence-matrix configuration: node
// churn confined to the first 3 seconds of an 8-second run, so the
// last fault plus the convergence bound lands well before the end and
// the monitor always gets to judge the run rather than skip it.
func overlayChurnParams(seed int64, kind topology.Kind, mode RepairMode, alg core.Algorithm) Params {
	p := DefaultParams()
	p.Seed = seed
	p.N = 30
	p.Duration = 8 * time.Second
	p.MeasureFrom = 500 * time.Millisecond
	p.MeasureTo = 7 * time.Second
	p.PublishRate = 10
	p.Algorithm = alg
	p.Gossip = core.DefaultConfig(alg)
	p.Overlay = kind
	p.Repair = mode
	p.FaultPlan = faults.ChurnPlan(seed, p.N, 2, 3*time.Second, 300*time.Millisecond)
	p.Check = &check.Options{Topology: true, Convergence: true}
	return p
}

// TestOverlayChurnConvergenceMatrix is the acceptance matrix: every
// algorithm on every overlay kind over several seeds, under node churn
// with self-stabilizing repair, must reach and retain a legal overlay
// within the convergence bound — the monitor turns any failure into a
// run-aborting violation with a reproducer.
func TestOverlayChurnConvergenceMatrix(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, kind := range topology.Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			var r Runner
			for _, alg := range core.Algorithms() {
				for _, seed := range seeds {
					res, err := r.Run(overlayChurnParams(seed, kind, RepairSelfStabilizing, alg))
					if err != nil {
						t.Fatalf("seed=%d alg=%s: %v", seed, alg, err)
					}
					if res.Crashes == 0 {
						t.Fatalf("seed=%d alg=%s: plan injected no churn", seed, alg)
					}
					if res.Repair.Rounds == 0 {
						t.Fatalf("seed=%d alg=%s: repair protocol never ran", seed, alg)
					}
					if res.RepairAbandoned != 0 {
						t.Fatalf("seed=%d alg=%s: oracle heals ran under self-stabilizing repair", seed, alg)
					}
				}
			}
		})
	}
}

// TestOverlayChurnOracleConvergence runs the same matrix rows under the
// oracle baseline: the injector's omniscient healing must satisfy the
// same convergence monitor.
func TestOverlayChurnOracleConvergence(t *testing.T) {
	var r Runner
	for _, kind := range topology.Kinds() {
		for _, seed := range []int64{1, 2, 3} {
			res, err := r.Run(overlayChurnParams(seed, kind, RepairOracle, core.CombinedPull))
			if err != nil {
				t.Fatalf("%v seed=%d: %v", kind, seed, err)
			}
			if res.Crashes == 0 {
				t.Fatalf("%v seed=%d: plan injected no churn", kind, seed)
			}
			if res.Repair.Rounds != 0 {
				t.Fatalf("%v seed=%d: repair protocol ran under the oracle", kind, seed)
			}
		}
	}
}

// TestSelfStabilizingRepairReattaches checks the protocol actually did
// the healing work the oracle used to do: crashed-and-restarted
// dispatchers were re-linked, and their isolation time was accounted.
func TestSelfStabilizingRepairReattaches(t *testing.T) {
	p := overlayChurnParams(1, topology.KindTree, RepairSelfStabilizing, core.CombinedPull)
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts == 0 {
		t.Fatal("plan produced no restarts; pick another seed")
	}
	if res.Repair.LinksAdded == 0 {
		t.Error("protocol added no links over a churn run")
	}
	if res.Repair.Reattaches == 0 {
		t.Error("no reattach was accounted despite restarts")
	}
	if res.Repair.Reattaches > 0 && res.Repair.ReattachTotal <= 0 {
		t.Error("reattaches counted but no isolation time accumulated")
	}
}

// TestOverlayChurnFixedSeed pins exact metrics for one fixed seed on
// each non-tree overlay under oracle churn — the overlay analogue of
// TestChurnFixedSeedMetrics. Any change to overlay generation, dedup
// forwarding, or fault execution order shows up here as a bit-level
// diff. Values recorded from the implementation when the test was
// written.
func TestOverlayChurnFixedSeed(t *testing.T) {
	pins := []struct {
		kind              topology.Kind
		rate              float64
		del, exp, rec     uint64
		crashes, restarts uint64
		kernel            uint64
	}{
		{
			kind: topology.KindScaleFree,
			rate: 0.8838959363577725, del: 4957, exp: 5703, rec: 827,
			crashes: 2, restarts: 2, kernel: 36367,
		},
		{
			kind: topology.KindSmallWorld,
			rate: 0.6562029671038486, del: 3714, exp: 5703, rec: 934,
			crashes: 2, restarts: 2, kernel: 32001,
		},
	}
	var r Runner
	for i := range pins {
		pin := &pins[i]
		p := overlayChurnParams(7, pin.kind, RepairOracle, core.CombinedPull)
		p.Check = nil
		res, err := r.Run(p)
		if err != nil {
			t.Fatalf("%v: %v", pin.kind, err)
		}
		t.Logf("%v: rate=%v del=%d exp=%d rec=%d crashes=%d restarts=%d kernel=%d",
			pin.kind, res.DeliveryRate, res.Deliveries, res.ExpectedDeliveries, res.Recoveries,
			res.Crashes, res.Restarts, res.KernelEvents)
		if res.DeliveryRate != pin.rate ||
			res.Deliveries != pin.del ||
			res.ExpectedDeliveries != pin.exp ||
			res.Recoveries != pin.rec ||
			res.Crashes != pin.crashes ||
			res.Restarts != pin.restarts ||
			res.KernelEvents != pin.kernel {
			t.Errorf("%v metrics drifted from pinned values:\n got rate=%v del=%d exp=%d rec=%d crash=%d restart=%d kernel=%d\nwant rate=%v del=%d exp=%d rec=%d crash=%d restart=%d kernel=%d",
				pin.kind,
				res.DeliveryRate, res.Deliveries, res.ExpectedDeliveries, res.Recoveries,
				res.Crashes, res.Restarts, res.KernelEvents,
				pin.rate, pin.del, pin.exp, pin.rec, pin.crashes, pin.restarts, pin.kernel)
		}
	}
}

// TestOverlayParamValidation pins normalize's compatibility rules for
// the new knobs.
func TestOverlayParamValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Params)
		want string
	}{
		{"unknown-overlay", func(p *Params) { p.Overlay = topology.Kind(99) }, "unknown overlay"},
		{"unknown-repair", func(p *Params) { p.Repair = RepairMode(99) }, "unknown RepairMode"},
		{"reconfig-on-scale-free", func(p *Params) {
			p.Overlay = topology.KindScaleFree
			p.ReconfigInterval = time.Second
		}, "ReconfigInterval needs the tree overlay"},
		{"self-stab-with-shards", func(p *Params) {
			p.Repair = RepairSelfStabilizing
			p.Shards = 2
		}, "incompatible with Shards"},
		{"self-stab-with-reconfig", func(p *Params) {
			p.Repair = RepairSelfStabilizing
			p.ReconfigInterval = time.Second
		}, "incompatible with ReconfigInterval"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := DefaultParams()
			tc.mut(&p)
			if _, err := Run(p); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestDefaultParamsAreTreeOracle pins the opt-in property: the zero
// values of the new knobs reproduce the paper's configuration, which
// the golden fixed-seed tests pin bit for bit.
func TestDefaultParamsAreTreeOracle(t *testing.T) {
	p := DefaultParams()
	if p.Overlay != topology.KindTree {
		t.Errorf("default overlay = %v, want tree", p.Overlay)
	}
	if p.Repair != RepairOracle {
		t.Errorf("default repair = %v, want oracle", p.Repair)
	}
	if mode, err := ParseRepairMode("self-stabilizing"); err != nil || mode != RepairSelfStabilizing {
		t.Errorf("ParseRepairMode(self-stabilizing) = %v, %v", mode, err)
	}
	if _, err := ParseRepairMode("bogus"); err == nil {
		t.Error("ParseRepairMode accepted bogus input")
	}
}

// TestSelfStabilizingDeterministicReplay extends the churn replay pin
// to the new repair mode and overlays: same seed, same plan, same
// protocol → bit-identical results.
func TestSelfStabilizingDeterministicReplay(t *testing.T) {
	for _, kind := range topology.Kinds() {
		p := overlayChurnParams(5, kind, RepairSelfStabilizing, core.CombinedPull)
		p.Check = nil
		var r1, r2 Runner
		a, err := r1.Run(p)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		b, err := r2.Run(p)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if a.DeliveryRate != b.DeliveryRate ||
			a.Deliveries != b.Deliveries ||
			a.KernelEvents != b.KernelEvents ||
			a.Repair != b.Repair {
			t.Fatalf("%v: replay diverged:\n  a=%+v\n  b=%+v", kind, a, b)
		}
	}
}
