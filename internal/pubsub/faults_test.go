package pubsub

import (
	"testing"

	"repro/internal/ident"
	"repro/internal/matching"
	"repro/internal/topology"
)

// TestFaultCrashRejoinResync walks the full crash/rejoin cycle at the
// pubsub layer: a mid-line dispatcher crashes (state wiped, neighbors
// flush their routes, survivors heal around it), then rejoins at a new
// attach point and resyncs subscription state over the new link — its
// own local subscription propagates out, and the component's interests
// propagate back in.
func TestFaultCrashRejoinResync(t *testing.T) {
	// Line 0-1-2-3-4; subscribers: node 2 and node 4 on pattern 5.
	topo := topology.NewLine(5)
	r := newRig(t, topo, Config{})
	InstallStableSubscriptions(topo, r.nodes, [][]ident.PatternID{nil, nil, {5}, nil, {5}})

	// Crash node 2: links removed, survivors flush, state wiped.
	removed := topo.RemoveNode(2)
	if len(removed) != 2 {
		t.Fatalf("crash removed %d links, want 2", len(removed))
	}
	r.net.SetNodeDown(2, true)
	r.nodes[2].OnNodeDown()
	r.nodes[1].OnLinkDown(2)
	r.nodes[3].OnLinkDown(2)
	if got := len(r.nodes[2].Neighbors()); got != 0 {
		t.Fatalf("crashed node keeps %d neighbors", got)
	}
	if dirs := r.nodes[2].InterestDirections(5); len(dirs) != 0 {
		t.Fatalf("crashed node keeps remote interest directions %v", dirs)
	}

	// Survivors heal: 1-3 bridges the gap.
	if err := topo.AddLink(1, 3); err != nil {
		t.Fatal(err)
	}
	r.nodes[1].OnLinkUp(3)
	r.nodes[3].OnLinkUp(1)
	r.run()

	// Traffic still reaches the surviving subscriber, not the corpse.
	r.nodes[0].Publish(matching.Content{5}, 0)
	r.run()
	if got := len(r.deliveries[4]); got != 1 {
		t.Fatalf("surviving subscriber got %d deliveries, want 1", got)
	}
	if got := len(r.deliveries[2]); got != 0 {
		t.Fatalf("crashed subscriber got %d deliveries, want 0", got)
	}

	// Restart: rejoin at node 4 (the only free slot end) and resync.
	r.net.SetNodeDown(2, false)
	if err := topo.AddLink(2, 4); err != nil {
		t.Fatal(err)
	}
	r.nodes[2].OnNodeUp()
	r.nodes[2].OnLinkUp(4)
	r.nodes[4].OnLinkUp(2)
	r.run()

	// The rejoined node's local subscription was re-advertised...
	r.nodes[0].Publish(matching.Content{5}, 0)
	r.run()
	if got := len(r.deliveries[2]); got != 1 {
		t.Fatalf("rejoined subscriber got %d deliveries, want 1", got)
	}
	// ...and it relearned the component's interests over the new link.
	if dirs := r.nodes[2].InterestDirections(5); len(dirs) != 1 || dirs[0] != 4 {
		t.Fatalf("rejoined node's interest directions for 5 = %v, want [4]", dirs)
	}
	// The old position no longer routes through the corpse's ex-links.
	for _, n := range []ident.NodeID{1, 3} {
		for _, d := range r.nodes[n].InterestDirections(5) {
			if d == 2 {
				t.Fatalf("node %d still routes pattern 5 toward the crashed node's old link", n)
			}
		}
	}
}
