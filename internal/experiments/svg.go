package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// RenderSVG draws a figure as a simple line chart (stdlib only), so a
// regenerated figure can be compared against the paper's plot at a
// glance. The chart is intentionally minimal: axes, ticks, one
// polyline per series, and a legend.
func RenderSVG(f Figure, w io.Writer) error {
	const (
		width   = 720
		height  = 440
		left    = 70
		right   = 40
		top     = 50
		bottom  = 60
		legendX = left + 12
	)
	plotW := float64(width - left - right)
	plotH := float64(height - top - bottom)

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for _, p := range s.Points {
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
		}
	}
	if math.IsInf(minX, 1) {
		return fmt.Errorf("experiments: figure %s has no points", f.ID)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	// Pad the y-range; delivery-rate charts look best pinned near
	// [min, 1].
	pad := (maxY - minY) * 0.08
	if pad == 0 {
		pad = math.Abs(maxY)*0.1 + 0.1
	}
	minY -= pad
	maxY += pad

	xpix := func(x float64) float64 { return left + (x-minX)/(maxX-minX)*plotW }
	ypix := func(y float64) float64 { return top + plotH - (y-minY)/(maxY-minY)*plotH }

	// A small qualitative palette (distinct, color-blind friendly).
	colors := []string{"#332288", "#117733", "#44AA99", "#DDCC77", "#CC6677", "#882255", "#88CCEE"}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="15" font-weight="bold">%s</text>`+"\n",
		left, escape(f.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		left, top+int(plotH), left+int(plotW), top+int(plotH))
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		left, top, left, top+int(plotH))

	// Ticks: 5 per axis.
	for i := 0; i <= 4; i++ {
		fx := minX + (maxX-minX)*float64(i)/4
		fy := minY + (maxY-minY)*float64(i)/4
		px := xpix(fx)
		py := ypix(fy)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n",
			px, top+int(plotH), px, top+int(plotH)+5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			px, top+int(plotH)+20, trimFloat(fx))
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`+"\n",
			left-5, py, left, py)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			left-8, py+4, trimFloat(fy))
	}
	// Axis labels.
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		left+plotW/2, height-12, escape(f.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%.1f" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %.1f)">%s</text>`+"\n",
		top+plotH/2, top+plotH/2, escape(f.YLabel))

	// Series.
	for si, s := range f.Series {
		color := colors[si%len(colors)]
		var pts []string
		for _, p := range s.Points {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xpix(p.X), ypix(p.Y)))
		}
		if len(pts) > 1 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n",
				strings.Join(pts, " "), color)
		}
		for _, p := range s.Points {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.4" fill="%s"/>`+"\n",
				xpix(p.X), ypix(p.Y), color)
		}
		// Legend entry.
		ly := top + 8 + si*16
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			legendX, ly, legendX+22, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			legendX+28, ly+4, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
