package experiments

import (
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/scenario"
)

// xScale pushes single simulations far past the paper's 100-dispatcher
// ceiling: one run per (N, algorithm) up to N=100,000, measuring
// delivery, per-dispatcher gossip overhead, and raw simulator
// throughput (kernel events per wall-clock second). The workload is
// scaled so the aggregate system load stays comparable across N — a
// constant systemwide publish rate, one subscription per dispatcher,
// and a pattern universe that grows with N (so the spill tier of the
// tiered PatternSet is on the hot path throughout).
//
// Runs execute on the kernel's conservative parallel executor
// (scenario.Params.Shards) when the host has the cores for it; results
// are bit-identical to sequential execution by construction, so the
// figure is reproducible on any machine. Throughput is measured per
// run with a sequential loop — RunAll's run-level parallelism would
// make wall-clock attribution meaningless.
func xScale(opt Options) ([]Figure, error) {
	ns := []int{1_000, 10_000, 100_000}
	algos := []core.Algorithm{core.NoRecovery, core.SubscriberPull}
	if opt.Quick {
		ns = []int{500, 2_000}
	}

	series := make(map[string][]Point) // metric/algorithm -> points
	var r scenario.Runner
	for _, n := range ns {
		for _, alg := range algos {
			p := scaleParams(opt, n, alg)
			start := time.Now()
			res, err := r.Run(p)
			if err != nil {
				return nil, err
			}
			wall := time.Since(start).Seconds()
			x := float64(n)
			series["delivery/"+alg.String()] = append(series["delivery/"+alg.String()],
				Point{X: x, Y: round2(res.DeliveryRate)})
			series["gossip/"+alg.String()] = append(series["gossip/"+alg.String()],
				Point{X: x, Y: round2(res.GossipPerDispatcher)})
			series["throughput/"+alg.String()] = append(series["throughput/"+alg.String()],
				Point{X: x, Y: round2(float64(res.KernelEvents) / wall)})
		}
	}

	mk := func(metric string) []Series {
		var out []Series
		for _, alg := range algos {
			out = append(out, Series{Name: alg.String(), Points: series[metric+"/"+alg.String()]})
		}
		return out
	}
	notes := []string{
		"systemwide publish load is held constant (~100 events/s) as N grows",
		"8 hot publishers over a 30-pattern slice keep per-source seq chains dense, so loss detection engages",
		"one subscription per dispatcher from a pattern universe growing with N (spill-tier heavy)",
		"gossip interval relaxed at scale: a smoke of the machinery, not the paper's recovery latency",
	}
	return []Figure{
		{
			ID: "x-scale", Title: "EXTENSION: delivery far past the paper's N=100",
			XLabel: "dispatchers", YLabel: "delivery rate",
			Series: mk("delivery"), Notes: notes,
		},
		{
			ID: "x-scale-overhead", Title: "EXTENSION: gossip overhead at scale",
			XLabel: "dispatchers", YLabel: "gossip messages per dispatcher",
			Series: mk("gossip"), Notes: notes,
		},
		{
			ID: "x-scale-throughput", Title: "EXTENSION: simulator throughput at scale",
			XLabel: "dispatchers", YLabel: "kernel events per wall-clock second",
			Series: mk("throughput"),
			Notes: []string{
				"wall-clock measured per run, sequentially — machine-dependent, unlike every other metric",
				"runs use the conservative parallel executor when cores allow; results are bit-identical either way",
			},
		},
	}, nil
}

// scaleParams scales the workload so aggregate load stays comparable
// while per-run cost remains tractable at N=100k.
func scaleParams(opt Options, n int, alg core.Algorithm) scenario.Params {
	p := scenario.DefaultParams()
	p.Seed = opt.Seed
	p.N = n
	p.Algorithm = alg
	p.Gossip = core.DefaultConfig(alg)
	p.PatternsPerNode = 1
	p.NumPatterns = n / 100
	if p.NumPatterns < 150 {
		p.NumPatterns = 150 // Π>128 keeps the spill tier hot at every N
	}
	if p.NumPatterns > 1000 {
		p.NumPatterns = 1000
	}
	// Eight hot publishers over a 30-pattern slice hold the aggregate
	// load at ~100 events/s while keeping each (source, pattern)
	// sequence chain dense (~1.2 events/s), so seqno-gap loss
	// detection — and with it the recovery machinery — actually
	// engages at every N. Spreading the same load over all N sources
	// would leave every chain with <1 event per run and recovery
	// vacuously idle.
	p.Publishers = 8
	p.PublishPatterns = 30
	p.PublishRate = 12.5
	p.Network.LossRate = 0.05
	switch {
	case n <= 10_000:
		p.Duration = 2 * time.Second
		p.Gossip.GossipInterval = 200 * time.Millisecond
	default:
		p.Duration = 1500 * time.Millisecond
		p.Gossip.GossipInterval = 300 * time.Millisecond
	}
	if opt.Duration > 0 {
		p.Duration = opt.Duration
	}
	p.MeasureFrom = p.Duration / 10
	p.MeasureTo = p.Duration - p.Duration/10
	// Keep the window aligned to time-series buckets: the streaming
	// tracker answers windowed queries at bucket granularity, and on
	// aligned windows its delivery rate equals the exact tracker's.
	p.MeasureFrom = p.MeasureFrom / p.BucketWidth * p.BucketWidth
	p.MeasureTo = p.MeasureTo / p.BucketWidth * p.BucketWidth
	// Past 10k dispatchers the exact per-event tracker's memory and
	// map traffic become a measurable share of the run; the streaming
	// engine keeps totals exact and windowed metrics bucket-granular
	// (the window above is bucket-aligned, so the reported delivery
	// rate is identical), at O(1) memory.
	if n >= 10_000 {
		p.MetricsMode = scenario.MetricsStreaming
	}
	if s := runtime.NumCPU(); s > 1 {
		if s > 8 {
			s = 8
		}
		p.Shards = s
	}
	return p
}
